// Atom-level dependency analysis (paper §VI future work): key-position
// inference, demotion to unkeyed, routing, and end-to-end accuracy of the
// finer-grained parallel reasoner.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "depgraph/atom_level.h"
#include "depgraph/decomposition.h"
#include "stream/format.h"
#include "stream/generator.h"
#include "streamrule/accuracy.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class AtomLevelTest : public ::testing::Test {
 protected:
  AtomLevelTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  PredicateSignature Sig(const std::string& name, uint32_t arity) {
    return PredicateSignature{symbols_->Intern(name), arity};
  }

  AtomLevelPlan BuildPlan(const Program& program, int fanout = 2) {
    StatusOr<InputDependencyGraph> graph =
        InputDependencyGraph::Build(program);
    EXPECT_TRUE(graph.ok()) << graph.status();
    StatusOr<PartitioningPlan> community = DecomposeInputDependencyGraph(*graph);
    EXPECT_TRUE(community.ok()) << community.status();
    StatusOr<AtomLevelPlan> plan =
        AtomLevelPlan::Build(program, *community, AtomLevelOptions{fanout});
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(plan).value();
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

TEST_F(AtomLevelTest, TrafficProgramKeysOnLocationAndCar) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  const AtomLevelPlan plan = BuildPlan(*program);

  // Location family keys on argument 0 (the road segment X).
  EXPECT_EQ(plan.KeyPositionOf(Sig("average_speed", 2)), 0);
  EXPECT_EQ(plan.KeyPositionOf(Sig("car_number", 2)), 0);
  EXPECT_EQ(plan.KeyPositionOf(Sig("traffic_light", 1)), 0);
  // Car family keys on argument 0 (the car C).
  EXPECT_EQ(plan.KeyPositionOf(Sig("car_in_smoke", 2)), 0);
  EXPECT_EQ(plan.KeyPositionOf(Sig("car_speed", 2)), 0);
  EXPECT_EQ(plan.KeyPositionOf(Sig("car_location", 2)), 0);
  // car_fire(X)'s argument is the location, not the anchor car: unkeyed.
  EXPECT_EQ(plan.KeyPositionOf(Sig("car_fire", 1)), AtomLevelPlan::kUnkeyed);

  // Both communities split: 2 communities x fanout 2 = 4 partitions.
  EXPECT_TRUE(plan.CommunityEnabled(0));
  EXPECT_TRUE(plan.CommunityEnabled(1));
  EXPECT_EQ(plan.num_partitions(), 4);
}

TEST_F(AtomLevelTest, FanoutOneKeepsCommunityCount) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  const AtomLevelPlan plan = BuildPlan(*program, /*fanout=*/1);
  EXPECT_EQ(plan.num_partitions(), 2);
}

TEST_F(AtomLevelTest, InvalidFanoutRejected) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph = InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> community = DecomposeInputDependencyGraph(*graph);
  EXPECT_FALSE(
      AtomLevelPlan::Build(*program, *community, AtomLevelOptions{0}).ok());
}

TEST_F(AtomLevelTest, CrossJoinDemotesToUnkeyed) {
  // No variable shared by both body atoms: neither predicate can be keyed
  // consistently, and the community is not split.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input left/1, right/1.
    pair :- left(X), right(Y).
  )");
  ASSERT_TRUE(program.ok());
  const AtomLevelPlan plan = BuildPlan(*program);
  EXPECT_EQ(plan.KeyPositionOf(Sig("left", 1)), AtomLevelPlan::kUnkeyed);
  EXPECT_EQ(plan.KeyPositionOf(Sig("right", 1)), AtomLevelPlan::kUnkeyed);
  EXPECT_FALSE(plan.CommunityEnabled(0));
}

TEST_F(AtomLevelTest, ConstantAtKeyPositionDemotes) {
  // status(S, active): the shared variable S sits at position 0; the
  // candidate key works. But status(active, S) with the anchor at
  // position 1 and a constant at 0 must not key on 0.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input status/2, level/2.
    alarm(S) :- status(S, active), level(S, L), L > 3.
  )");
  ASSERT_TRUE(program.ok());
  const AtomLevelPlan plan = BuildPlan(*program);
  EXPECT_EQ(plan.KeyPositionOf(Sig("status", 2)), 0);
  EXPECT_EQ(plan.KeyPositionOf(Sig("level", 2)), 0);
  EXPECT_TRUE(plan.CommunityEnabled(0));
}

TEST_F(AtomLevelTest, ConflictingKeysAcrossRulesDemote) {
  // r1 keys link/2 on position 0, r2 on position 1: inconsistent, so
  // link/2 ends up unkeyed but the other predicates keep working keys.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input link/2, a/1, b/1.
    fwd(X) :- a(X), link(X, Y).
    bwd(Y) :- b(Y), link(X, Y).
  )");
  ASSERT_TRUE(program.ok());
  const AtomLevelPlan plan = BuildPlan(*program);
  EXPECT_EQ(plan.KeyPositionOf(Sig("link", 2)), AtomLevelPlan::kUnkeyed);
}

TEST_F(AtomLevelTest, RoutingRespectsKeysAndReplication) {
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input p/2, q/2.
    joined(X) :- p(X, A), q(X, B), A < B.
  )");
  ASSERT_TRUE(program.ok());
  const AtomLevelPlan plan = BuildPlan(*program, /*fanout=*/4);
  ASSERT_EQ(plan.num_partitions(), 4);

  // Two atoms with the same key value land in the same bucket...
  const Atom p5(symbols_->Intern("p"), {Term::Integer(5), Term::Integer(1)});
  const Atom q5(symbols_->Intern("q"), {Term::Integer(5), Term::Integer(9)});
  ASSERT_EQ(plan.PartitionsOf(p5).size(), 1u);
  EXPECT_EQ(plan.PartitionsOf(p5), plan.PartitionsOf(q5));

  // ...and routing is a function of the key only.
  const Atom p5b(symbols_->Intern("p"), {Term::Integer(5), Term::Integer(7)});
  EXPECT_EQ(plan.PartitionsOf(p5), plan.PartitionsOf(p5b));
}

TEST_F(AtomLevelTest, HandlerCoversWindow) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  const AtomLevelPlan plan = BuildPlan(*program, /*fanout=*/3);
  AtomLevelPartitioningHandler handler(plan);

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
  DataFormatProcessor format;
  ASSERT_TRUE(
      format.DeclareInputPredicates(program->input_predicates()).ok());
  StatusOr<std::vector<Atom>> facts =
      format.ToFacts(generator.GenerateWindow(3000));
  ASSERT_TRUE(facts.ok());

  const auto partitions = handler.PartitionFacts(*facts);
  ASSERT_EQ(partitions.size(), 6u);  // 2 communities x 3 buckets.
  size_t total = 0;
  for (const auto& p : partitions) total += p.size();
  // All traffic input predicates are keyed: no replication, exact cover.
  EXPECT_EQ(total, facts->size());
}

TEST_F(AtomLevelTest, EndToEndAccuracyStaysOne) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph = InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> community = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(community.ok());
  StatusOr<AtomLevelPlan> plan =
      AtomLevelPlan::Build(*program, *community, AtomLevelOptions{2});
  ASSERT_TRUE(plan.ok());

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
  const TripleWindow window = generator.GenerateTripleWindow(6000);
  DataFormatProcessor format;
  ASSERT_TRUE(
      format.DeclareInputPredicates(program->input_predicates()).ok());
  StatusOr<std::vector<Atom>> facts = format.ToFacts(window.items);
  ASSERT_TRUE(facts.ok());

  Reasoner r(&*program);
  StatusOr<ReasonerResult> reference = r.Process(window);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->answers.empty());
  ASSERT_FALSE(reference->answers[0].empty())
      << "need derived events for a meaningful check";

  ParallelReasoner pr(&*program, *community);
  AtomLevelPartitioningHandler handler(*plan);
  StatusOr<ParallelReasonerResult> result =
      pr.ProcessFactPartitions(handler.PartitionFacts(*facts));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->num_partitions, 4u);
  EXPECT_DOUBLE_EQ(MeanAccuracy(result->answers, reference->answers), 1.0);
}

TEST_F(AtomLevelTest, PPrimeAlsoExact) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph = InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> community = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(community.ok());
  StatusOr<AtomLevelPlan> plan =
      AtomLevelPlan::Build(*program, *community, AtomLevelOptions{2});
  ASSERT_TRUE(plan.ok());

  // r7 joins car_fire (implicitly keyed by the car C, which its argument
  // does not carry) with location-keyed many_cars: the covering community
  // (the car/fire one, containing duplicated car_number) must NOT be
  // split, while the pure location community still is.
  EXPECT_TRUE(plan->CommunityEnabled(0));
  EXPECT_FALSE(plan->CommunityEnabled(1));
  EXPECT_EQ(plan->num_partitions(), 3);

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
  const TripleWindow window = generator.GenerateTripleWindow(5000);
  DataFormatProcessor format;
  ASSERT_TRUE(
      format.DeclareInputPredicates(program->input_predicates()).ok());
  StatusOr<std::vector<Atom>> facts = format.ToFacts(window.items);

  Reasoner r(&*program);
  StatusOr<ReasonerResult> reference = r.Process(window);
  ParallelReasoner pr(&*program, *community);
  AtomLevelPartitioningHandler handler(*plan);
  StatusOr<ParallelReasonerResult> result =
      pr.ProcessFactPartitions(handler.PartitionFacts(*facts));
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_DOUBLE_EQ(MeanAccuracy(result->answers, reference->answers), 1.0);
}

}  // namespace
}  // namespace streamasp
