// The staged asynchronous execution engine: differential equivalence
// against the synchronous oracle, ordered emission with several windows in
// flight, Flush drain semantics, and backpressure accounting.

#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "stream/generator.h"
#include "streamrule/pipeline.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class AsyncPipelineTest : public ::testing::Test {
 protected:
  AsyncPipelineTest() : symbols_(MakeSymbolTable()) {}

  std::vector<Triple> MakeStream(size_t items, uint64_t seed = 2017) {
    GeneratorOptions options;
    options.seed = seed;
    SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), options);
    return generator.GenerateWindow(items);
  }

  // Runs one pipeline over `stream` and renders every callback into one
  // transcript line per window: sequence, size, and every answer set,
  // byte for byte. Also checks the emission order invariant.
  std::string RunTranscript(const Program& program, PipelineOptions options,
                            const std::vector<Triple>& stream,
                            PipelineStats* stats_out = nullptr) {
    std::string transcript;
    int64_t last_sequence = -1;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              // Strictly increasing sequences even when windows complete
              // out of order: the ordered emitter's contract.
              EXPECT_GT(static_cast<int64_t>(window.sequence), last_sequence);
              last_sequence = static_cast<int64_t>(window.sequence);
              transcript += "#" + std::to_string(window.sequence) + "[" +
                            std::to_string(window.size()) + "]:";
              for (const GroundAnswer& answer : result.answers) {
                transcript += " " + AnswerToString(answer, *symbols_);
              }
              transcript += "\n";
            });
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    (*pipeline)->PushBatch(stream);
    (*pipeline)->Flush();
    if (stats_out != nullptr) *stats_out = (*pipeline)->stats();
    return transcript;
  }

  SymbolTablePtr symbols_;
};

TEST_F(AsyncPipelineTest, DifferentialAsyncMatchesSyncOracle) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(6700);  // 13 full + trailer.

  PipelineOptions sync;
  sync.window_size = 500;
  sync.async = false;

  PipelineOptions async = sync;
  async.async = true;
  async.max_inflight_windows = 4;

  PipelineStats sync_stats;
  PipelineStats async_stats;
  const std::string sync_transcript =
      RunTranscript(*program, sync, stream, &sync_stats);
  const std::string async_transcript =
      RunTranscript(*program, async, stream, &async_stats);

  // Byte-identical ordered output is the whole point of the ordered
  // emitter + lossless backpressure.
  EXPECT_FALSE(sync_transcript.empty());
  EXPECT_EQ(sync_transcript, async_transcript);

  EXPECT_EQ(sync_stats.windows, 14u);  // 13 full + flushed trailer.
  EXPECT_EQ(async_stats.windows, sync_stats.windows);
  EXPECT_EQ(async_stats.items, sync_stats.items);
  EXPECT_EQ(async_stats.answers, sync_stats.answers);
  EXPECT_EQ(async_stats.errors, 0u);
  EXPECT_EQ(async_stats.enqueued_windows, 14u);
  EXPECT_EQ(async_stats.dropped_windows, 0u);
  EXPECT_EQ(async_stats.rejected_windows, 0u);
  EXPECT_GE(async_stats.max_queue_depth, 1u);
  EXPECT_LE(async_stats.max_queue_depth, 4u);
}

TEST_F(AsyncPipelineTest, DifferentialHoldsForConnectedVariantToo) {
  // P' forces the Louvain + duplication path, so partitions genuinely
  // overlap while several windows are in flight.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(3000, /*seed=*/7);

  PipelineOptions sync;
  sync.window_size = 400;
  PipelineOptions async = sync;
  async.async = true;
  async.max_inflight_windows = 8;
  async.num_reason_workers = 3;

  EXPECT_EQ(RunTranscript(*program, sync, stream),
            RunTranscript(*program, async, stream));
}

TEST_F(AsyncPipelineTest, FlushDrainsAndPipelineStaysUsable) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> callbacks{0};
  PipelineOptions options;
  options.window_size = 300;
  options.async = true;
  options.max_inflight_windows = 4;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &*program, options,
          [&](const TripleWindow&, const ParallelReasonerResult&) {
            ++callbacks;
          });
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();
  EXPECT_GE((*pipeline)->num_reason_workers(), 1u);

  (*pipeline)->PushBatch(MakeStream(900));
  (*pipeline)->Flush();
  // Flush is a full drain: every admitted window reasoned AND delivered.
  EXPECT_EQ(callbacks.load(), 3u);
  EXPECT_EQ((*pipeline)->stats().windows, 3u);

  // The engine keeps running after a flush.
  (*pipeline)->PushBatch(MakeStream(600, /*seed=*/5));
  (*pipeline)->Flush();
  EXPECT_EQ(callbacks.load(), 5u);
}

TEST_F(AsyncPipelineTest, SheddingPoliciesKeepOrderAndAccounts) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  for (const BackpressurePolicy policy :
       {BackpressurePolicy::kDropOldest, BackpressurePolicy::kReject}) {
    SCOPED_TRACE(BackpressurePolicyName(policy));
    PipelineOptions options;
    options.window_size = 100;
    options.async = true;
    options.max_inflight_windows = 1;
    options.num_reason_workers = 1;
    options.backpressure = policy;

    uint64_t delivered = 0;
    int64_t last_sequence = -1;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &*program, options,
            [&](const TripleWindow& window, const ParallelReasonerResult&) {
              // Shedding may skip sequences but never reorders them.
              EXPECT_GT(static_cast<int64_t>(window.sequence), last_sequence);
              last_sequence = static_cast<int64_t>(window.sequence);
              ++delivered;
            });
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();

    (*pipeline)->PushBatch(MakeStream(5000));
    (*pipeline)->Flush();

    const PipelineStats stats = (*pipeline)->stats();
    // 50 windower emissions are fully accounted: delivered, shed, or
    // (drop-oldest) admitted-then-evicted.
    EXPECT_EQ(stats.windows, delivered);
    EXPECT_EQ(stats.errors, 0u);
    if (policy == BackpressurePolicy::kDropOldest) {
      EXPECT_EQ(stats.enqueued_windows, 50u);
      EXPECT_EQ(stats.rejected_windows, 0u);
      EXPECT_EQ(stats.windows + stats.dropped_windows, 50u);
    } else {
      EXPECT_EQ(stats.dropped_windows, 0u);
      EXPECT_EQ(stats.enqueued_windows + stats.rejected_windows, 50u);
      EXPECT_EQ(stats.windows, stats.enqueued_windows);
    }
    EXPECT_LE(stats.max_queue_depth, 1u);
  }
}

TEST_F(AsyncPipelineTest, FlushWaitsForInFlightCallbacks) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  // A deliberately slow callback: Flush must not return while the emitter
  // is still inside it, even once the reorder buffer looks empty.
  std::atomic<uint64_t> finished_callbacks{0};
  PipelineOptions options;
  options.window_size = 200;
  options.async = true;
  options.max_inflight_windows = 2;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &*program, options,
          [&](const TripleWindow&, const ParallelReasonerResult&) {
            std::this_thread::sleep_for(std::chrono::milliseconds(30));
            ++finished_callbacks;
          });
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();

  (*pipeline)->PushBatch(MakeStream(400));  // Two windows.
  (*pipeline)->Flush();
  EXPECT_EQ(finished_callbacks.load(), 2u);
}

TEST_F(AsyncPipelineTest, CreateRejectsZeroInflight) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  PipelineOptions options;
  options.async = true;
  options.max_inflight_windows = 0;
  EXPECT_FALSE(StreamRulePipeline::Create(
                   &*program, options,
                   [](const TripleWindow&, const ParallelReasonerResult&) {})
                   .ok());
}

TEST_F(AsyncPipelineTest, ThrowingCallbackIsCountedNotFatal) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  // In sync mode a throwing callback propagates to the Push caller; in
  // async mode it lands on the emitter thread, which must survive it
  // (count an error) and keep delivering later windows.
  std::atomic<uint64_t> delivered{0};
  PipelineOptions options;
  options.window_size = 250;
  options.async = true;
  options.max_inflight_windows = 2;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &*program, options,
          [&](const TripleWindow& window, const ParallelReasonerResult&) {
            if (window.sequence == 0) throw std::runtime_error("boom");
            ++delivered;
          });
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();

  (*pipeline)->PushBatch(MakeStream(750));  // Three windows.
  (*pipeline)->Flush();

  EXPECT_EQ(delivered.load(), 2u);  // Windows 1 and 2 still arrive.
  const PipelineStats stats = (*pipeline)->stats();
  EXPECT_EQ(stats.errors, 1u);
  EXPECT_EQ(stats.windows, 3u);  // Reasoning itself succeeded for all 3.
}

TEST_F(AsyncPipelineTest, DestructorDrainsAdmittedWindows) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> callbacks{0};
  {
    PipelineOptions options;
    options.window_size = 200;
    options.async = true;
    options.max_inflight_windows = 8;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &*program, options,
            [&](const TripleWindow&, const ParallelReasonerResult&) {
              ++callbacks;
            });
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    (*pipeline)->PushBatch(MakeStream(1600));  // 8 admitted windows.
    // No Flush: the destructor must still reason + deliver all of them.
  }
  EXPECT_EQ(callbacks.load(), 8u);
}

}  // namespace
}  // namespace streamasp
