// Graceful degradation under overload: the tombstone emission channel,
// shedding-aware sharded merge, completeness accounting, and the bursty
// workload generator. The core property: shedding degrades answers
// (completeness < 1), it never reorders, stalls, or silently corrupts —
// and windows nothing was shed from stay byte-identical to the lossless
// oracle.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "asp/parser.h"
#include "stream/generator.h"
#include "streamrule/answer.h"
#include "streamrule/pipeline.h"
#include "streamrule/sharded_pipeline.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class OverloadTest : public ::testing::Test {
 protected:
  OverloadTest() : symbols_(MakeSymbolTable()) {}

  std::vector<Triple> MakeStream(size_t items, uint64_t seed = 2017) {
    GeneratorOptions options;
    options.seed = seed;
    SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), options);
    return generator.GenerateWindow(items);
  }

  std::string Line(const TripleWindow& window,
                   const ParallelReasonerResult& result) {
    std::string line = "#" + std::to_string(window.sequence) + "[" +
                       std::to_string(window.size()) + "]:";
    for (const GroundAnswer& answer : result.answers) {
      line += " " + AnswerToString(answer, *symbols_);
    }
    return line;
  }

  // Lossless unsharded synchronous run — the oracle every shedding
  // configuration is compared against, keyed by window sequence.
  std::map<uint64_t, std::string> OracleLines(const Program& program,
                                              size_t window_size,
                                              size_t window_slide,
                                              const std::vector<Triple>& stream) {
    std::map<uint64_t, std::string> lines;
    PipelineOptions options;
    options.window_size = window_size;
    options.window_slide = window_slide;
    options.async = false;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              lines[window.sequence] = Line(window, result);
            });
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    (*pipeline)->PushBatch(stream);
    (*pipeline)->Flush();
    return lines;
  }

  SymbolTablePtr symbols_;
};

// The acceptance matrix: shards {1, 2, 4} × {tumbling, sliding+reuse}
// under a deterministic pseudo-random admission filter (~25% of shard
// sub-windows shed, desynchronized across shards). The merge must never
// reorder or stall, every global window must be delivered, windows with
// completeness == 1.0 (bit-exact) must be byte-identical to the lossless
// oracle — which under sliding+reuse exercises the shed-delta fold across
// gaps — and the shed accounting must match what the filter actually did.
TEST_F(OverloadTest, RandomizedShedShardedMatrixStaysOrderedAndExact) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(5300);
  const size_t window_size = 500;

  for (const bool sliding : {false, true}) {
    // 20% turnover per slide keeps single-window deltas under the
    // grounder's fallback fraction, so incremental reuse genuinely
    // engages (folded post-shed deltas may still legitimately fall back).
    const size_t slide = sliding ? 100 : 0;
    const std::map<uint64_t, std::string> oracle =
        OracleLines(*program, window_size, slide, stream);
    ASSERT_FALSE(oracle.empty());

    for (const size_t shards : {1u, 2u, 4u}) {
      SCOPED_TRACE("sliding=" + std::to_string(sliding) +
                   " shards=" + std::to_string(shards));
      std::atomic<uint64_t> filter_shed_windows{0};
      std::atomic<uint64_t> filter_shed_items{0};

      ShardedPipelineOptions options;
      options.num_shards = shards;
      options.pipeline.window_size = window_size;
      options.pipeline.window_slide = slide;
      options.pipeline.async = false;  // Sheds synchronously → exact folds.
      options.pipeline.reuse_grounding = sliding;
      options.pipeline.admission_filter = [&](const TripleWindow& window) {
        // Deterministic ~25% shed, desynchronized across shards by mixing
        // the sub-window's size into the hash.
        const uint64_t h =
            (window.sequence * 2654435761ULL) ^ (window.size() * 97ULL);
        if (h % 4 != 0) return true;
        filter_shed_windows.fetch_add(1, std::memory_order_relaxed);
        filter_shed_items.fetch_add(window.size(), std::memory_order_relaxed);
        return false;
      };

      std::vector<std::pair<uint64_t, double>> delivered;  // seq, completeness
      std::vector<std::string> mismatches;
      uint64_t full_shed_windows = 0;
      int64_t last_sequence = -1;
      StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
          ShardedPipelineEngine::Create(
              &*program, options,
              [&](const TripleWindow& window,
                  const ParallelReasonerResult& result) {
                EXPECT_GT(static_cast<int64_t>(window.sequence),
                          last_sequence);
                last_sequence = static_cast<int64_t>(window.sequence);
                delivered.emplace_back(window.sequence, result.completeness);
                if (result.completeness == 1.0) {
                  const auto it = oracle.find(window.sequence);
                  const std::string line = Line(window, result);
                  if (it == oracle.end() || it->second != line) {
                    mismatches.push_back(line);
                  }
                } else if (result.completeness == 0.0) {
                  // Fully shed global windows bypass combining: zero
                  // answer sets, not one vacuous empty one.
                  EXPECT_TRUE(result.answers.empty());
                  ++full_shed_windows;
                }
              });
      ASSERT_TRUE(engine.ok()) << engine.status();
      (*engine)->PushBatch(stream);
      (*engine)->Flush();  // Must return: tombstones release every slot.

      // Every global window was delivered despite shedding — no stall,
      // no skipped slot.
      ASSERT_EQ(delivered.size(), oracle.size());
      EXPECT_TRUE(mismatches.empty())
          << "complete window diverged from oracle: " << mismatches.front();

      const ShardedPipelineStats stats = (*engine)->stats();
      // The filter both shed and passed work (the matrix is meaningless
      // otherwise), and the engine's accounting matches it exactly.
      EXPECT_GT(filter_shed_windows.load(), 0u);
      EXPECT_LT(filter_shed_windows.load(), oracle.size() * shards);
      EXPECT_EQ(stats.shed_subwindows, filter_shed_windows.load());
      EXPECT_EQ(stats.aggregate.rejected_windows, filter_shed_windows.load());
      EXPECT_EQ(stats.aggregate.shed_items, filter_shed_items.load());
      EXPECT_EQ(stats.aggregate.dropped_windows, 0u);
      EXPECT_EQ(stats.merge_errors, 0u);
      EXPECT_EQ(stats.merged_windows, oracle.size());

      // completeness < 1 on exactly the windows with a shed contribution.
      uint64_t degraded = 0;
      double min_completeness = 1.0;
      double sum = 0;
      for (const auto& [sequence, completeness] : delivered) {
        EXPECT_GE(completeness, 0.0);
        EXPECT_LE(completeness, 1.0);
        if (completeness < 1.0) ++degraded;
        min_completeness = std::min(min_completeness, completeness);
        sum += completeness;
      }
      EXPECT_EQ(stats.degraded_windows, degraded);
      EXPECT_DOUBLE_EQ(stats.min_completeness, min_completeness);
      EXPECT_NEAR(stats.mean_completeness,
                  sum / static_cast<double>(delivered.size()), 1e-9);
      EXPECT_GT(degraded, 0u);
      if (shards == 1) {
        // One shard: a shed sub-window is the whole global window.
        EXPECT_EQ(full_shed_windows, filter_shed_windows.load());
      }
      if (sliding) {
        // The fold kept the incremental chain warm across shed gaps.
        EXPECT_GT(stats.aggregate.incremental_windows, 0u);
      }
    }
  }
}

// Tombstones interleave with results on the same ordered channel: across
// result + shed callbacks the delivered sequences are exactly 0..N-1 in
// strictly increasing order, in both sync and async mode, and the
// pipeline-level completeness matches the filter's actual sheds.
TEST_F(OverloadTest, TombstonesInterleaveInStrictSequenceOrder) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const size_t window_size = 100;
  const std::vector<Triple> stream = MakeStream(3000);  // 30 windows.

  for (const bool async : {false, true}) {
    SCOPED_TRACE("async=" + std::to_string(async));
    PipelineOptions options;
    options.window_size = window_size;
    options.async = async;
    options.num_reason_workers = async ? 2 : 0;
    options.admission_filter = [](const TripleWindow& window) {
      return window.sequence % 3 != 1;
    };

    std::mutex mutex;
    std::vector<uint64_t> all_sequences;
    std::vector<uint64_t> shed_sequences;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &*program, options,
            [&](const TripleWindow& window, const ParallelReasonerResult&) {
              std::lock_guard<std::mutex> lock(mutex);
              all_sequences.push_back(window.sequence);
            },
            /*error_callback=*/nullptr,
            [&](TripleWindow& window) {
              std::lock_guard<std::mutex> lock(mutex);
              all_sequences.push_back(window.sequence);
              shed_sequences.push_back(window.sequence);
              // Tombstones carry the unreasoned window's items intact.
              EXPECT_EQ(window.size(), window_size);
            });
    ASSERT_TRUE(pipeline.ok()) << pipeline.status();
    (*pipeline)->PushBatch(stream);
    (*pipeline)->Flush();

    // One delivery per emitted window, all three channels interleaved in
    // strict sequence order with no gaps.
    ASSERT_EQ(all_sequences.size(), 30u);
    for (size_t i = 0; i < all_sequences.size(); ++i) {
      EXPECT_EQ(all_sequences[i], i);
    }
    ASSERT_EQ(shed_sequences.size(), 10u);
    for (size_t i = 0; i < shed_sequences.size(); ++i) {
      EXPECT_EQ(shed_sequences[i], 3 * i + 1);
    }

    const PipelineStats stats = (*pipeline)->stats();
    EXPECT_EQ(stats.windows, 20u);
    EXPECT_EQ(stats.rejected_windows, 10u);
    EXPECT_EQ(stats.dropped_windows, 0u);
    EXPECT_EQ(stats.shed_windows(), 10u);
    EXPECT_EQ(stats.shed_items, 10u * window_size);
    EXPECT_DOUBLE_EQ(stats.completeness(), 2000.0 / 3000.0);
    if (async) {
      // Admission sheds happen before the queue: nothing shed was ever
      // enqueued.
      EXPECT_EQ(stats.enqueued_windows, 20u);
    }
  }
}

// Hot-key storm against an undersized async pipeline with kDropOldest:
// the pipeline keeps up by evicting stale windows, so per-window emit
// latency (window close → ordered delivery) stays bounded by the in-flight
// budget times the slowest window — instead of the unbounded backlog a
// lossless queue would accumulate — and the drop accounting matches the
// losses exactly.
TEST_F(OverloadTest, HotKeyStormDropOldestBoundsEmitLatency) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  const size_t window_size = 250;
  const size_t num_windows = 200;
  BurstOptions burst;
  burst.shape = BurstShape::kHotKeyStorm;
  burst.period = 2000;
  burst.burst_fraction = 0.5;
  burst.hot_subjects = 2;
  burst.hot_fraction = 0.9;
  BurstyStreamGenerator generator =
      MakeTrafficBurstGenerator(*symbols_, /*seed=*/7, burst);

  PipelineOptions options;
  options.window_size = window_size;
  options.async = true;
  options.num_reason_workers = 1;
  options.max_inflight_windows = 2;
  options.backpressure = BackpressurePolicy::kDropOldest;

  using Clock = std::chrono::steady_clock;
  // Pre-sized and written before the window's last item is pushed, so the
  // emitter thread never races a reallocation or an unwritten slot.
  std::vector<Clock::time_point> close_times(num_windows);
  std::mutex mutex;
  std::vector<double> emit_latency_ms;  // Result channel only.
  uint64_t shed_tombstones = 0;

  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &*program, options,
          [&](const TripleWindow& window, const ParallelReasonerResult&) {
            const Clock::time_point now = Clock::now();
            std::lock_guard<std::mutex> lock(mutex);
            emit_latency_ms.push_back(
                std::chrono::duration<double, std::milli>(
                    now - close_times[window.sequence])
                    .count());
          },
          /*error_callback=*/nullptr,
          [&](TripleWindow&) {
            std::lock_guard<std::mutex> lock(mutex);
            ++shed_tombstones;
          });
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();

  // Full-speed push: one window's worth at a time, stamping the close
  // time just before the chunk whose last item closes window k (every
  // schema predicate is an input, so window k closes exactly at item
  // (k+1)*window_size). Stamping early by one chunk's push time only
  // makes the measured latency conservatively larger.
  for (size_t k = 0; k < num_windows; ++k) {
    const std::vector<Triple> chunk = generator.Generate(window_size);
    close_times[k] = Clock::now();
    (*pipeline)->PushBatch(chunk);
  }
  (*pipeline)->Flush();

  const PipelineStats stats = (*pipeline)->stats();
  // Every window accounted for: reasoned or shed, nothing lost silently.
  EXPECT_EQ(stats.windows + stats.shed_windows(), num_windows);
  EXPECT_EQ(shed_tombstones, stats.shed_windows());
  EXPECT_EQ(stats.shed_items, stats.shed_windows() * window_size);
  EXPECT_DOUBLE_EQ(
      stats.completeness(),
      static_cast<double>(stats.windows * window_size) /
          static_cast<double>(num_windows * window_size));
  EXPECT_EQ(stats.errors, 0u);

  // Pushing a window takes microseconds, reasoning takes ≫ that with one
  // worker, so a 200-window full-speed burst must overflow the 2-deep
  // queue and shed.
  EXPECT_GT(stats.dropped_windows, 0u);

  // The latency bound: a delivered window waits behind at most the queue
  // (2) + in-flight worker windows (1) + its own reasoning, each at most
  // max_latency_ms — anything near num_windows × mean latency would mean
  // the shedding failed to bound the backlog. Generous 4× slack plus a
  // constant for scheduling noise keeps this off machine speed.
  ASSERT_FALSE(emit_latency_ms.empty());
  std::sort(emit_latency_ms.begin(), emit_latency_ms.end());
  const double p99 =
      emit_latency_ms[(emit_latency_ms.size() * 99) / 100 == 0
                          ? emit_latency_ms.size() - 1
                          : (emit_latency_ms.size() * 99) / 100 - 1];
  const double budget_windows =
      static_cast<double>(options.max_inflight_windows) + 2.0;
  EXPECT_LE(p99, 4.0 * budget_windows * stats.max_latency_ms + 500.0)
      << "p99 emit latency " << p99 << "ms vs max window latency "
      << stats.max_latency_ms << "ms";
}

// Sustained overload through the sharded engine with lossy async shards:
// Flush returns (tombstones release every merge slot), every global
// window is delivered in order, and the degradation counters agree with
// the per-shard shed accounting.
TEST_F(OverloadTest, ShardedSustainedOverloadNeverStalls) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  const size_t window_size = 400;
  const size_t num_windows = 100;
  BurstOptions burst;
  burst.shape = BurstShape::kSustained;
  burst.burst_intensity = 8.0;
  std::vector<Triple> stream = MakeTrafficBurstStream(
      *symbols_, num_windows * window_size, /*seed=*/11, burst);

  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.pipeline.window_size = window_size;
  options.pipeline.async = true;
  options.pipeline.num_reason_workers = 1;
  options.pipeline.max_inflight_windows = 2;
  options.pipeline.backpressure = BackpressurePolicy::kDropOldest;

  std::vector<uint64_t> sequences;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [&](const TripleWindow& window, const ParallelReasonerResult&) {
            sequences.push_back(window.sequence);
          });
  ASSERT_TRUE(engine.ok()) << engine.status();
  (*engine)->PushBatch(stream);
  (*engine)->Flush();  // The stall-freedom assertion: this must return.

  ASSERT_EQ(sequences.size(), num_windows);
  for (size_t i = 0; i < sequences.size(); ++i) {
    EXPECT_EQ(sequences[i], i);
  }

  const ShardedPipelineStats stats = (*engine)->stats();
  EXPECT_EQ(stats.merged_windows, num_windows);
  EXPECT_EQ(stats.merge_errors, 0u);
  EXPECT_EQ(stats.shed_subwindows,
            stats.aggregate.dropped_windows + stats.aggregate.rejected_windows);
  // Full-speed push against 1-worker 2-deep shards must actually shed.
  EXPECT_GT(stats.shed_subwindows, 0u);
  EXPECT_GT(stats.degraded_windows, 0u);
  EXPECT_LT(stats.mean_completeness, 1.0);
  EXPECT_LE(stats.min_completeness, stats.mean_completeness);
  EXPECT_GT(stats.aggregate.shed_items, 0u);
}

// The bursty generator is deterministic and its overlay does what the
// shapes advertise: flash crowds only pace (items match the base stream),
// hot-key storms rewrite in-spike subjects onto the hot pool, sustained
// overload has no valleys.
TEST_F(OverloadTest, BurstyGeneratorShapesAreDeterministic) {
  const uint64_t seed = 99;
  const size_t items = 4000;
  BurstOptions flash;
  flash.shape = BurstShape::kFlashCrowd;
  flash.period = 1000;
  flash.burst_fraction = 0.25;
  flash.burst_intensity = 4.0;

  // Determinism: same seed and chunking → byte-identical streams.
  std::vector<Triple> a =
      MakeTrafficBurstGenerator(*symbols_, seed, flash).Generate(items);
  std::vector<Triple> b =
      MakeTrafficBurstGenerator(*symbols_, seed, flash).Generate(items);
  ASSERT_EQ(a.size(), b.size());
  EXPECT_TRUE(std::equal(a.begin(), a.end(), b.begin()));

  // Flash crowds are a pure pacing overlay: the items are the base stream.
  GeneratorOptions base_options;
  base_options.seed = seed;
  SyntheticStreamGenerator base(MakeTrafficSchema(*symbols_), base_options);
  const std::vector<Triple> base_items = base.GenerateWindow(items);
  EXPECT_TRUE(std::equal(a.begin(), a.end(), base_items.begin()));

  BurstyStreamGenerator flash_generator =
      MakeTrafficBurstGenerator(*symbols_, seed, flash);
  EXPECT_TRUE(flash_generator.InBurst(0));
  EXPECT_TRUE(flash_generator.InBurst(249));
  EXPECT_FALSE(flash_generator.InBurst(250));
  EXPECT_FALSE(flash_generator.InBurst(999));
  EXPECT_TRUE(flash_generator.InBurst(1000));
  EXPECT_DOUBLE_EQ(flash_generator.IntensityAt(100), 4.0);
  EXPECT_DOUBLE_EQ(flash_generator.IntensityAt(500), 1.0);

  // Sustained: every position is in burst.
  BurstOptions sustained;
  sustained.shape = BurstShape::kSustained;
  sustained.burst_intensity = 2.5;
  BurstyStreamGenerator sustained_generator =
      MakeTrafficBurstGenerator(*symbols_, seed, sustained);
  EXPECT_TRUE(sustained_generator.InBurst(0));
  EXPECT_TRUE(sustained_generator.InBurst(123456));
  EXPECT_DOUBLE_EQ(sustained_generator.IntensityAt(42), 2.5);

  // Hot-key storm: in-spike subjects collapse onto the hot pool (values
  // offset by 1 << 20, pool size hot_subjects), valleys stay base.
  BurstOptions storm = flash;
  storm.shape = BurstShape::kHotKeyStorm;
  storm.hot_subjects = 2;
  storm.hot_fraction = 0.9;
  BurstyStreamGenerator storm_generator =
      MakeTrafficBurstGenerator(*symbols_, seed, storm);
  const std::vector<Triple> stormy = storm_generator.Generate(items);
  size_t in_burst = 0;
  size_t hot = 0;
  for (size_t i = 0; i < stormy.size(); ++i) {
    const bool is_hot = stormy[i].subject.is_integer() &&
                        stormy[i].subject.integer_value() >= (1 << 20);
    if (storm_generator.InBurst(i)) {
      ++in_burst;
      if (is_hot) {
        ++hot;
        EXPECT_LT(stormy[i].subject.integer_value(),
                  (1 << 20) + static_cast<int64_t>(storm.hot_subjects));
      }
    } else {
      // Valley items are untouched base items.
      EXPECT_FALSE(is_hot);
      EXPECT_EQ(stormy[i], base_items[i]);
    }
  }
  ASSERT_GT(in_burst, 0u);
  // ~90% of in-spike subjects are hot; 0.8 leaves generous slack.
  EXPECT_GT(static_cast<double>(hot), 0.8 * static_cast<double>(in_burst));
}

}  // namespace
}  // namespace streamasp
