#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "depgraph/decomposition.h"
#include "streamrule/accuracy.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class ReasonerTest : public ::testing::Test {
 protected:
  ReasonerTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Atom A(const std::string& text) {
    StatusOr<Atom> atom = parser_.ParseGroundAtom(text);
    EXPECT_TRUE(atom.ok()) << atom.status();
    return std::move(atom).value();
  }

  /// The paper's §II-A example window.
  std::vector<Atom> PaperWindow() {
    return {A("average_speed(newcastle, 10)"), A("car_number(newcastle, 55)"),
            A("traffic_light(newcastle)"),     A("car_in_smoke(car1, high)"),
            A("car_speed(car1, 0)"),           A("car_location(car1, dangan)")};
  }

  bool AnswerContains(const GroundAnswer& answer, const std::string& atom) {
    const Atom wanted = A(atom);
    for (const Atom& a : answer) {
      if (a == wanted) return true;
    }
    return false;
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

TEST_F(ReasonerTest, PaperExampleGroundTruth) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  Reasoner reasoner(&*program);
  StatusOr<ReasonerResult> result = reasoner.ProcessFacts(PaperWindow());
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->answers.size(), 1u);
  const GroundAnswer& answer = result->answers[0];
  // §II-A: "The accurate answer is the event car_fire(dangan) detected and
  // the notification about the dangan road segment."
  EXPECT_TRUE(AnswerContains(answer, "car_fire(dangan)"));
  EXPECT_TRUE(AnswerContains(answer, "give_notification(dangan)"));
  EXPECT_FALSE(AnswerContains(answer, "traffic_jam(newcastle)"));
  EXPECT_FALSE(AnswerContains(answer, "give_notification(newcastle)"));
  // Latency bookkeeping is populated.
  EXPECT_GE(result->latency_ms, 0.0);
  EXPECT_GE(result->ground_ms, 0.0);
  EXPECT_GT(result->grounding.num_atoms, 0u);
}

TEST_F(ReasonerTest, PaperBadRandomSplitProducesWrongEvent) {
  // W1 = {average_speed, car_number, car_in_smoke},
  // W2 = {traffic_light, car_speed, car_location}: reasoning in parallel
  // wrongly detects traffic_jam(newcastle) and misses car_fire(dangan).
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  const std::vector<Atom> window = PaperWindow();
  const std::vector<std::vector<Atom>> bad_split = {
      {window[0], window[1], window[3]},
      {window[2], window[4], window[5]}};

  PartitioningPlan trivial(1);
  ParallelReasoner pr(&*program, trivial);
  StatusOr<ParallelReasonerResult> result =
      pr.ProcessFactPartitions(bad_split);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_TRUE(
      AnswerContains(result->answers[0], "traffic_jam(newcastle)"));
  EXPECT_TRUE(
      AnswerContains(result->answers[0], "give_notification(newcastle)"));
  EXPECT_FALSE(AnswerContains(result->answers[0], "car_fire(dangan)"));
}

TEST_F(ReasonerTest, DependencyPartitioningMatchesWholeWindow) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  ASSERT_TRUE(graph.ok());
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(plan.ok());

  Reasoner r(&*program);
  ParallelReasoner pr(&*program, *plan);
  StatusOr<ReasonerResult> whole = r.ProcessFacts(PaperWindow());
  StatusOr<ParallelReasonerResult> split = pr.ProcessFacts(PaperWindow());
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(split.ok());
  EXPECT_DOUBLE_EQ(MeanAccuracy(split->answers, whole->answers), 1.0);
  ASSERT_EQ(split->answers.size(), 1u);
  EXPECT_TRUE(AnswerContains(split->answers[0], "car_fire(dangan)"));
  EXPECT_FALSE(AnswerContains(split->answers[0], "traffic_jam(newcastle)"));
  EXPECT_EQ(split->num_partitions, 2u);
  EXPECT_GE(split->critical_path_ms, 0.0);
}

TEST_F(ReasonerTest, ShowProjectionFiltersAnswers) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, true);
  ASSERT_TRUE(program.ok());
  Reasoner reasoner(&*program);
  StatusOr<ReasonerResult> result = reasoner.ProcessFacts(PaperWindow());
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 1u);
  // Only the three shown event predicates survive.
  EXPECT_EQ(result->answers[0].size(), 2u);  // car_fire + give_notification.
  for (const Atom& atom : result->answers[0]) {
    const std::string name = symbols_->NameOf(atom.predicate());
    EXPECT_TRUE(name == "traffic_jam" || name == "car_fire" ||
                name == "give_notification")
        << name;
  }
}

TEST_F(ReasonerTest, ProjectionCanBeDisabled) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, true);
  ASSERT_TRUE(program.ok());
  ReasonerOptions options;
  options.project_to_shown = false;
  Reasoner reasoner(&*program, options);
  StatusOr<ReasonerResult> result = reasoner.ProcessFacts(PaperWindow());
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->answers[0].size(), 2u);
}

TEST_F(ReasonerTest, TripleWindowPipelineConvertsAndSolves) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  Reasoner reasoner(&*program);

  TripleWindow window;
  window.items = {
      Triple{Term::Symbol(symbols_->Intern("newcastle")),
             symbols_->Intern("average_speed"), Term::Integer(10)},
      Triple{Term::Symbol(symbols_->Intern("newcastle")),
             symbols_->Intern("car_number"), Term::Integer(55)}};
  StatusOr<ReasonerResult> result = reasoner.Process(window);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->answers.size(), 1u);
  // No traffic light in the window: the jam fires now.
  EXPECT_TRUE(AnswerContains(result->answers[0], "traffic_jam(newcastle)"));
  EXPECT_GE(result->convert_ms, 0.0);
}

TEST_F(ReasonerTest, PPrimeRule7FiresThroughDuplicatedPredicate) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kPPrime, false);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(plan.ok());

  // A car fire at a location with many cars (but no slow speed): r7 must
  // derive traffic_jam from car_fire — and the relevant car_number atom is
  // duplicated into the fire partition.
  const std::vector<Atom> window = {
      A("car_in_smoke(car1, high)"), A("car_speed(car1, 0)"),
      A("car_location(car1, dangan)"), A("car_number(dangan, 50)")};
  Reasoner r(&*program);
  ParallelReasoner pr(&*program, *plan);
  StatusOr<ReasonerResult> whole = r.ProcessFacts(window);
  StatusOr<ParallelReasonerResult> split = pr.ProcessFacts(window);
  ASSERT_TRUE(whole.ok());
  ASSERT_TRUE(split.ok());
  ASSERT_EQ(whole->answers.size(), 1u);
  EXPECT_TRUE(AnswerContains(whole->answers[0], "traffic_jam(dangan)"));
  EXPECT_DOUBLE_EQ(MeanAccuracy(split->answers, whole->answers), 1.0);
  // The duplicated car_number atom inflates partition totals.
  EXPECT_EQ(split->total_partition_items, window.size() + 1);
}

TEST_F(ReasonerTest, EmptyWindowYieldsEmptyAnswer) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  Reasoner reasoner(&*program);
  StatusOr<ReasonerResult> result = reasoner.ProcessFacts({});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_TRUE(result->answers[0].empty());
}

TEST_F(ReasonerTest, ParallelReasonerReportsPerPartitionLatency) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  ParallelReasoner pr(&*program, *plan);
  StatusOr<ParallelReasonerResult> result = pr.ProcessFacts(PaperWindow());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->partition_latency_ms.size(), 2u);
  double slowest = 0;
  for (double ms : result->partition_latency_ms) {
    slowest = std::max(slowest, ms);
  }
  EXPECT_GE(result->critical_path_ms, slowest);
  EXPECT_LE(result->critical_path_ms,
            result->partition_ms + slowest + result->combine_ms + 1e-9);
}

}  // namespace
}  // namespace streamasp
