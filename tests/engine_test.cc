// StreamEngine facade: the shared Create-time validator (one rule table
// across both engine shapes), shape selection, the unified EngineStats
// snapshot, and differential checks that output through the facade is
// byte-identical to driving the underlying engines directly.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "stream/generator.h"
#include "streamrule/engine.h"
#include "streamrule/traffic_workload.h"
#include "streamrule/validate.h"

namespace streamasp {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : symbols_(MakeSymbolTable()) {
    StatusOr<Program> program = MakeTrafficProgram(
        symbols_, TrafficProgramVariant::kPPrime, /*with_show=*/true);
    if (program.ok()) {
      program_ = std::make_unique<Program>(std::move(*program));
    }
  }

  void SetUp() override { ASSERT_NE(program_, nullptr); }

  std::vector<Triple> MakeStream(size_t items) {
    GeneratorOptions options;
    options.seed = 7;
    SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), options);
    return generator.GenerateWindow(items);
  }

  SymbolTablePtr symbols_;
  std::unique_ptr<Program> program_;
};

// ---------------------------------------------------------------------------
// Shared validator: one rule table, uniform Status messages for both
// shapes (satellite: Create-time validation hoisted out of the engines).
// ---------------------------------------------------------------------------

TEST_F(EngineTest, ValidatorTable) {
  struct Case {
    const char* name;
    PipelineOptions pipeline;
    bool sharded;
    bool ok;
    const char* message_substring;  // Must appear in the error message.
  };
  PipelineOptions async_no_queue;
  async_no_queue.async = true;
  async_no_queue.max_inflight_windows = 0;
  PipelineOptions oversized_slide;
  oversized_slide.window_size = 100;
  oversized_slide.window_slide = 101;
  PipelineOptions boundary_slide;
  boundary_slide.window_size = 100;
  boundary_slide.window_slide = 100;
  PipelineOptions lossy_sync;
  lossy_sync.backpressure = BackpressurePolicy::kDropOldest;
  PipelineOptions lossy_async = lossy_sync;
  lossy_async.async = true;

  const Case kCases[] = {
      {"defaults", PipelineOptions{}, false, true, ""},
      {"defaults sharded", PipelineOptions{}, true, true, ""},
      {"async needs inflight >= 1", async_no_queue, false, false,
       "max_inflight_windows"},
      {"async needs inflight >= 1 (sharded)", async_no_queue, true, false,
       "max_inflight_windows"},
      {"slide beyond window", oversized_slide, false, false, "window_slide"},
      {"slide == window is tumbling", boundary_slide, false, true, ""},
      {"lossy sync unsharded ok", lossy_sync, false, true, ""},
      {"lossy sync sharded rejected", lossy_sync, true, false,
       "lossy backpressure policies only engage in async shard pipelines"},
      {"lossy async sharded ok", lossy_async, true, true, ""},
  };
  for (const Case& c : kCases) {
    const Status status = ValidatePipelineOptions(c.pipeline, c.sharded);
    EXPECT_EQ(status.ok(), c.ok) << c.name << ": " << status.ToString();
    if (!c.ok) {
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << c.name;
      EXPECT_NE(status.message().find(c.message_substring),
                std::string::npos)
          << c.name << ": " << status.ToString();
    }
  }

  // Sharded wrapper adds the shard-count rule on top of the same table.
  ShardedPipelineOptions no_shards;
  no_shards.num_shards = 0;
  const Status status = ValidateShardedPipelineOptions(no_shards);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("num_shards"), std::string::npos);
}

TEST_F(EngineTest, CreateRejectsThroughSharedValidator) {
  // The same violation is refused with the same message through every
  // entry point: unsharded facade, sharded facade, and both engines.
  EngineConfig bad;
  bad.pipeline.async = true;
  bad.pipeline.max_inflight_windows = 0;
  auto unsharded = StreamEngine::Create(program_.get(), bad,
                                        [](EmissionEvent&) {});
  ASSERT_FALSE(unsharded.ok());
  bad.num_shards = 2;
  auto sharded = StreamEngine::Create(program_.get(), bad,
                                      [](EmissionEvent&) {});
  ASSERT_FALSE(sharded.ok());
  EXPECT_EQ(unsharded.status(), sharded.status());

  EXPECT_FALSE(
      StreamEngine::Create(nullptr, EngineConfig{}, [](EmissionEvent&) {})
          .ok());
  EXPECT_FALSE(
      StreamEngine::Create(program_.get(), EngineConfig{}, EmissionHandler())
          .ok());
}

// ---------------------------------------------------------------------------
// Shape selection and the unified stats surface.
// ---------------------------------------------------------------------------

TEST_F(EngineTest, PicksShapeFromConfig) {
  EngineConfig config;
  config.pipeline.window_size = 500;
  auto unsharded = StreamEngine::Create(program_.get(), config,
                                        [](EmissionEvent&) {});
  ASSERT_TRUE(unsharded.ok()) << unsharded.status();
  EXPECT_NE((*unsharded)->pipeline(), nullptr);
  EXPECT_EQ((*unsharded)->sharded(), nullptr);
  EXPECT_EQ((*unsharded)->num_shards(), 0u);

  config.num_shards = 3;
  auto sharded = StreamEngine::Create(program_.get(), config,
                                      [](EmissionEvent&) {});
  ASSERT_TRUE(sharded.ok()) << sharded.status();
  EXPECT_EQ((*sharded)->pipeline(), nullptr);
  ASSERT_NE((*sharded)->sharded(), nullptr);
  EXPECT_EQ((*sharded)->num_shards(), 3u);
}

TEST_F(EngineTest, UnifiedStatsUnsharded) {
  EngineConfig config;
  config.pipeline.window_size = 400;
  uint64_t events = 0;
  auto engine = StreamEngine::Create(program_.get(), config,
                                     [&](EmissionEvent& event) {
                                       if (event.kind ==
                                           EmissionEvent::Kind::kResult) {
                                         ++events;
                                       }
                                     });
  ASSERT_TRUE(engine.ok());
  (*engine)->PushBatch(MakeStream(1000));
  (*engine)->Flush();
  const EngineStats stats = (*engine)->stats();
  EXPECT_EQ(stats.num_shards, 0u);
  EXPECT_EQ(stats.delivered_windows, events);
  EXPECT_EQ(stats.delivered_windows, 3u);  // 400 + 400 + flushed 200.
  EXPECT_EQ(stats.reasoning.items, 1000u);
  EXPECT_EQ(stats.delivery_errors, 0u);
  EXPECT_EQ(stats.accounted_windows(), 3u);
  EXPECT_EQ(stats.completeness(), 1.0);
  EXPECT_EQ(stats.max_shard_items(), 1000u);
  EXPECT_TRUE(stats.per_shard.empty());
}

TEST_F(EngineTest, UnifiedStatsSharded) {
  EngineConfig config;
  config.num_shards = 2;
  config.pipeline.window_size = 400;
  uint64_t events = 0;
  auto engine = StreamEngine::Create(program_.get(), config,
                                     [&](EmissionEvent& event) {
                                       if (event.kind ==
                                           EmissionEvent::Kind::kResult) {
                                         ++events;
                                       }
                                     });
  ASSERT_TRUE(engine.ok());
  (*engine)->PushBatch(MakeStream(1000));
  (*engine)->Flush();
  const EngineStats stats = (*engine)->stats();
  EXPECT_EQ(stats.num_shards, 2u);
  EXPECT_EQ(stats.delivered_windows, events);
  EXPECT_EQ(stats.delivered_windows, 3u);  // Global windows, merged.
  EXPECT_EQ(stats.per_shard.size(), 2u);
  EXPECT_EQ(stats.routed_items.size(), 2u);
  // The P' plan duplicates car_number across communities, so the router
  // broadcasts those items to both shards: the routed sum counts each
  // broadcast item once per shard and thus exceeds the pushed count.
  EXPECT_GT(stats.routed_items[0] + stats.routed_items[1] +
                stats.filtered_items,
            1000u);
  EXPECT_GE(stats.routed_items[0], 1u);
  EXPECT_GE(stats.routed_items[1], 1u);
  EXPECT_EQ(stats.delivery_errors, 0u);
  EXPECT_EQ(stats.mean_completeness, 1.0);
}

// ---------------------------------------------------------------------------
// Differential: the facade adds no behavior — event streams through
// StreamEngine are byte-identical to the underlying engines driven
// directly, across shapes, sliding windows, and the reuse stack.
// ---------------------------------------------------------------------------

std::string Transcript(const SymbolTable& symbols, uint64_t sequence,
                       const EmissionEvent& event) {
  std::string out = "#" + std::to_string(sequence);
  switch (event.kind) {
    case EmissionEvent::Kind::kResult:
      out += " result items=" + std::to_string(event.window->items.size());
      for (const GroundAnswer& answer : event.result->answers) {
        out += "\n  " + AnswerToString(answer, symbols);
      }
      break;
    case EmissionEvent::Kind::kError:
      out += " error " + event.status.ToString();
      break;
    case EmissionEvent::Kind::kShed:
      out += " shed items=" + std::to_string(event.window->items.size());
      break;
  }
  out += "\n";
  return out;
}

TEST_F(EngineTest, FacadeMatchesDirectEnginesByteForByte) {
  const std::vector<Triple> stream = MakeStream(2400);
  struct Shape {
    const char* name;
    size_t shards;
    bool async;
    size_t slide;
    bool reuse_grounding;
    bool reuse_solving;
  };
  const Shape kShapes[] = {
      {"sync", 0, false, 0, false, false},
      {"async", 0, true, 0, false, false},
      {"sliding+reuse", 0, false, 150, true, false},
      {"sliding+reuse-solve", 0, false, 150, true, true},
      {"sharded x3", 3, true, 0, false, false},
      {"sharded sliding", 2, false, 150, true, false},
  };
  for (const Shape& shape : kShapes) {
    SCOPED_TRACE(shape.name);
    EngineConfig config;
    config.num_shards = shape.shards;
    config.pipeline.window_size = 600;
    config.pipeline.window_slide = shape.slide;
    config.pipeline.async = shape.async;
    config.pipeline.reuse_grounding = shape.reuse_grounding;
    config.pipeline.reuse_solving = shape.reuse_solving;

    std::string facade_transcript;
    auto facade = StreamEngine::Create(
        program_.get(), config, [&](EmissionEvent& event) {
          facade_transcript +=
              Transcript(*symbols_, event.sequence, event);
        });
    ASSERT_TRUE(facade.ok()) << facade.status();
    (*facade)->PushBatch(stream);
    (*facade)->Flush();

    std::string direct_transcript;
    if (shape.shards == 0) {
      auto direct = StreamRulePipeline::Create(
          program_.get(), config.pipeline, [&](EmissionEvent& event) {
            direct_transcript +=
                Transcript(*symbols_, event.sequence, event);
          });
      ASSERT_TRUE(direct.ok()) << direct.status();
      (*direct)->PushBatch(stream);
      (*direct)->Flush();
    } else {
      ShardedPipelineOptions options;
      options.num_shards = shape.shards;
      options.pipeline = config.pipeline;
      auto direct = ShardedPipelineEngine::Create(
          program_.get(), options, [&](EmissionEvent& event) {
            direct_transcript +=
                Transcript(*symbols_, event.sequence, event);
          });
      ASSERT_TRUE(direct.ok()) << direct.status();
      (*direct)->PushBatch(stream);
      (*direct)->Flush();
    }
    EXPECT_FALSE(facade_transcript.empty());
    EXPECT_EQ(facade_transcript, direct_transcript);
  }
}

TEST_F(EngineTest, ShardedFacadeMatchesUnshardedAnswers) {
  // Subject sharding respects the traffic rules' dependencies, so the
  // sharded shape must reproduce the single-pipeline answer stream
  // byte-for-byte through the facade.
  const std::vector<Triple> stream = MakeStream(1800);
  auto run = [&](size_t shards) {
    EngineConfig config;
    config.num_shards = shards;
    config.pipeline.window_size = 600;
    config.pipeline.async = shards != 0;
    std::string transcript;
    auto engine = StreamEngine::Create(
        program_.get(), config, [&](EmissionEvent& event) {
          if (event.kind != EmissionEvent::Kind::kResult) return;
          transcript += "#" + std::to_string(event.sequence);
          for (const GroundAnswer& answer : event.result->answers) {
            transcript += "\n  " + AnswerToString(answer, *symbols_);
          }
          transcript += "\n";
        });
    EXPECT_TRUE(engine.ok()) << engine.status();
    (*engine)->PushBatch(stream);
    (*engine)->Flush();
    return transcript;
  };
  const std::string unsharded = run(0);
  EXPECT_FALSE(unsharded.empty());
  EXPECT_EQ(run(2), unsharded);
  EXPECT_EQ(run(4), unsharded);
}

}  // namespace
}  // namespace streamasp
