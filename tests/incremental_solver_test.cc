// IncrementalSolver differentials against the cold Solver oracle: the
// persistent, delta-patched, warm-started engine must return exactly the
// model set a fresh Grounder + Solver::Solve produces for every window of
// a sliding stream — across randomized programs (property style), choice
// programs where warm-start guidance actually reorders the search, and
// regression shapes where the delta retracts the rule supporting the
// previous model.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "ground/incremental_grounder.h"
#include "solve/incremental_solver.h"
#include "solve/solver.h"
#include "util/rng.h"

namespace streamasp {
namespace {

/// A window's models, each as a sorted vector of Atom values (comparable
/// across different groundings' atom tables), with the models themselves
/// canonically sorted — order-insensitive comparison, since warm-start
/// guidance permutes the cold enumeration order.
using ModelSet = std::vector<std::vector<Atom>>;

ModelSet ToModelSet(const std::vector<AnswerSet>& models,
                    const AtomTable& atoms) {
  ModelSet out;
  out.reserve(models.size());
  for (const AnswerSet& model : models) {
    std::vector<Atom> resolved;
    resolved.reserve(model.atoms.size());
    for (GroundAtomId id : model.atoms) {
      resolved.push_back(atoms.GetAtom(id));
    }
    std::sort(resolved.begin(), resolved.end());
    out.push_back(std::move(resolved));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// The cold oracle: fresh batch grounding + fresh Solver per window.
ModelSet OracleModels(const Program& program, const std::vector<Atom>& facts,
                      const SolverOptions& options) {
  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(program, facts);
  EXPECT_TRUE(ground.ok()) << ground.status();
  Solver solver(options);
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  EXPECT_TRUE(models.ok()) << models.status();
  return ToModelSet(*models, ground->atoms());
}

/// Drives one persistent grounder+solver pair over a window stream and
/// checks every window's model set against the cold oracle.
void CheckSlidingStream(const Program& program,
                        const std::vector<std::vector<Atom>>& windows,
                        SolverStats* total = nullptr,
                        double fallback_delta_fraction = 0.5,
                        bool maintain_fixpoint = true) {
  SolverOptions solver_options;
  solver_options.reuse_solving = true;
  solver_options.maintain_fixpoint = maintain_fixpoint;

  IncrementalGroundingOptions incremental;
  incremental.assemble_output = false;
  incremental.fallback_delta_fraction = fallback_delta_fraction;
  IncrementalGrounder grounder(&program, GroundingOptions{}, incremental);
  IncrementalSolver solver(solver_options);

  for (size_t w = 0; w < windows.size(); ++w) {
    SCOPED_TRACE("window " + std::to_string(w));
    GroundingStats gstats;
    StatusOr<const GroundProgram*> ground =
        grounder.GroundWindow(w, windows[w], nullptr, &gstats);
    ASSERT_TRUE(ground.ok()) << ground.status();

    std::vector<AnswerSet> models;
    SolverStats sstats;
    const Status status =
        solver.SolveWindow(grounder.last_delta(), grounder.cached_rules(),
                           grounder.atom_table().size(), &models, &sstats);
    ASSERT_TRUE(status.ok()) << status;
    if (total != nullptr) total->Accumulate(sstats);

    EXPECT_EQ(ToModelSet(models, grounder.atom_table()),
              OracleModels(program, windows[w], solver_options));
  }
}

/// Random propositional normal program (the property_test.cc recipe).
std::string RandomProgram(Rng* rng) {
  const int num_atoms = 3 + static_cast<int>(rng->NextBounded(5));
  const int num_rules = 2 + static_cast<int>(rng->NextBounded(10));
  std::string text;
  auto atom = [&](int i) { return "a" + std::to_string(i); };
  for (int r = 0; r < num_rules; ++r) {
    const int kind = static_cast<int>(rng->NextBounded(10));
    if (kind < 2) {
      text += atom(static_cast<int>(rng->NextBounded(num_atoms))) + ".\n";
      continue;
    }
    const bool constraint = kind == 9;
    const int body_len = 1 + static_cast<int>(rng->NextBounded(3));
    std::string body;
    for (int b = 0; b < body_len; ++b) {
      if (b > 0) body += ", ";
      if (rng->NextBounded(3) == 0) body += "not ";
      body += atom(static_cast<int>(rng->NextBounded(num_atoms)));
    }
    if (constraint) {
      text += ":- " + body + ".\n";
    } else {
      text += atom(static_cast<int>(rng->NextBounded(num_atoms))) + " :- " +
              body + ".\n";
    }
  }
  // Window facts arrive on a dedicated input predicate feeding the
  // program's atoms, so the fact delta actually changes derivations.
  text += "#input in/1.\n";
  for (int i = 0; i < num_atoms; ++i) {
    text += atom(i) + " :- in(" + std::to_string(i) + ").\n";
  }
  return text;
}

/// Random definite (negation- and constraint-free) program: the fragment
/// the maintained-fixpoint path owns. Same recipe as RandomProgram with
/// the negative literals and constraints stripped, so every window has a
/// unique stable model (its least model) and the maintained fixpoint is
/// directly comparable against the cold oracle.
std::string RandomDefiniteProgram(Rng* rng) {
  const int num_atoms = 3 + static_cast<int>(rng->NextBounded(5));
  const int num_rules = 2 + static_cast<int>(rng->NextBounded(10));
  std::string text;
  auto atom = [&](int i) { return "a" + std::to_string(i); };
  for (int r = 0; r < num_rules; ++r) {
    if (rng->NextBounded(10) < 2) {
      text += atom(static_cast<int>(rng->NextBounded(num_atoms))) + ".\n";
      continue;
    }
    const int body_len = 1 + static_cast<int>(rng->NextBounded(3));
    std::string body;
    for (int b = 0; b < body_len; ++b) {
      if (b > 0) body += ", ";
      body += atom(static_cast<int>(rng->NextBounded(num_atoms)));
    }
    text += atom(static_cast<int>(rng->NextBounded(num_atoms))) + " :- " +
            body + ".\n";
  }
  text += "#input in/1.\n";
  for (int i = 0; i < num_atoms; ++i) {
    text += atom(i) + " :- in(" + std::to_string(i) + ").\n";
  }
  return text;
}

class WarmColdPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WarmColdPropertyTest, WarmEnumerationMatchesColdModelSet) {
  Rng rng(GetParam());
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  const std::string text = RandomProgram(&rng);
  StatusOr<Program> program = parser.ParseProgram(text);
  ASSERT_TRUE(program.ok()) << text;

  const SymbolId in = symbols->Intern("in");
  auto fact = [&](int i) {
    return Atom(in, {Term::Integer(i)});
  };

  // A sliding stream of fact windows: each window randomly mutates the
  // previous one (small deltas exercise the patch path, large ones the
  // fallback/rebuild path).
  std::vector<std::vector<Atom>> windows;
  std::vector<int> current;
  for (int w = 0; w < 8; ++w) {
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      const int a = static_cast<int>(rng.NextBounded(8));
      auto it = std::find(current.begin(), current.end(), a);
      if (it == current.end()) {
        current.push_back(a);
      } else {
        current.erase(it);
      }
    }
    std::vector<Atom> window;
    window.reserve(current.size());
    for (int a : current) window.push_back(fact(a));
    windows.push_back(std::move(window));
  }

  CheckSlidingStream(*program, windows);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WarmColdPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

/// Maintained-fixpoint differential: definite random programs, sliding
/// fact windows, delta path forced (tiny windows would otherwise trip the
/// grounder's fallback fraction). CheckSlidingStream compares every
/// window's model against the cold Grounder + Solver oracle, so any atom
/// the maintenance forgets to de-justify — or wrongly retracts — breaks
/// the byte-level equality.
class MaintainedFixpointPropertyTest
    : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MaintainedFixpointPropertyTest, MaintainedModelMatchesColdOracle) {
  Rng rng(GetParam());
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  const std::string text = RandomDefiniteProgram(&rng);
  StatusOr<Program> program = parser.ParseProgram(text);
  ASSERT_TRUE(program.ok()) << text;

  const SymbolId in = symbols->Intern("in");
  auto fact = [&](int i) { return Atom(in, {Term::Integer(i)}); };

  std::vector<std::vector<Atom>> windows;
  std::vector<int> current;
  for (int w = 0; w < 8; ++w) {
    const int mutations = 1 + static_cast<int>(rng.NextBounded(4));
    for (int m = 0; m < mutations; ++m) {
      const int a = static_cast<int>(rng.NextBounded(8));
      auto it = std::find(current.begin(), current.end(), a);
      if (it == current.end()) {
        current.push_back(a);
      } else {
        current.erase(it);
      }
    }
    std::vector<Atom> window;
    window.reserve(current.size());
    for (int a : current) window.push_back(fact(a));
    windows.push_back(std::move(window));
  }

  SolverStats total;
  CheckSlidingStream(*program, windows, &total,
                     /*fallback_delta_fraction=*/100.0);
  // Windows after a (re)build ride the maintained fixpoint. The grounder
  // may interleave tombstone-compaction rebuilds (which reset the solver
  // wholesale), so the exact count is stream-dependent — but with eight
  // windows at least one must have been maintained.
  EXPECT_GT(total.fixpoint_maintained_windows, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MaintainedFixpointPropertyTest,
                         ::testing::Range<uint64_t>(1, 41));

TEST(IncrementalSolverTest, RetractionDejustifiesTransitiveCone) {
  // Transitive closure over explicit edge facts. Window 1 retracts edge
  // e(1,2), the sole support of reach(1,2) and — transitively — of
  // reach(1,3) and reach(1,4): the maintained fixpoint must de-justify
  // the whole cone (a support-count-only scheme would leave reach(1,3)
  // and reach(1,4) "supported" by the now-unfounded chain), while the
  // suffix closure reach(2,3), reach(2,4), reach(3,4) must survive
  // untouched. The cold-oracle comparison inside CheckSlidingStream makes
  // both failure modes (stale cone atoms, over-retraction) visible.
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input e/2.
    reach(X, Y) :- e(X, Y).
    reach(X, Z) :- reach(X, Y), e(Y, Z).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  const SymbolId e = symbols->Intern("e");
  auto edge = [&](int x, int y) {
    return Atom(e, {Term::Integer(x), Term::Integer(y)});
  };

  std::vector<std::vector<Atom>> windows = {
      {edge(1, 2), edge(2, 3), edge(3, 4)},
      {edge(2, 3), edge(3, 4)},              // Retract e(1,2): cone goes.
      {edge(2, 3), edge(3, 4), edge(1, 2)},  // Re-admit: cone comes back.
      {edge(3, 4)},                          // Retract both upstream edges.
  };
  SolverStats total;
  CheckSlidingStream(*program, windows, &total,
                     /*fallback_delta_fraction=*/100.0);
  EXPECT_GT(total.fixpoint_maintained_windows, 0u);
  // The cone is real work (atoms_touched) but a strict subset of the live
  // model (assignments_reused): both counters must move.
  EXPECT_GT(total.atoms_touched, 0u);
  EXPECT_GT(total.assignments_reused, 0u);
}

TEST(IncrementalSolverTest, MaintenanceOffRevertsToPatchedRebuild) {
  // The same stream with maintain_fixpoint off must still match the
  // oracle (it recomputes the closure from the patched store every
  // window) and must never report a maintained window.
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input e/2.
    reach(X, Y) :- e(X, Y).
    reach(X, Z) :- reach(X, Y), e(Y, Z).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  const SymbolId e = symbols->Intern("e");
  auto edge = [&](int x, int y) {
    return Atom(e, {Term::Integer(x), Term::Integer(y)});
  };

  std::vector<std::vector<Atom>> windows = {
      {edge(1, 2), edge(2, 3), edge(3, 4)},
      {edge(2, 3), edge(3, 4)},
      {edge(2, 3), edge(3, 4), edge(1, 2)},
  };
  SolverStats total;
  CheckSlidingStream(*program, windows, &total,
                     /*fallback_delta_fraction=*/100.0,
                     /*maintain_fixpoint=*/false);
  EXPECT_EQ(total.fixpoint_maintained_windows, 0u);
}

TEST(IncrementalSolverTest, RetractedSupportDoesNotLeakStaleAssignments) {
  // Window 0 derives b (and c through the cycle-breaking rule) from fact
  // a; window 1 retracts a, so the delta removes the very rules that
  // supported the previous model. A stale watch entry or a leaked trail
  // assignment would resurrect a or b.
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input a/0, d/0.
    b :- a.
    c :- b, not d.
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  const Atom a(symbols->Intern("a"), {});
  const Atom d(symbols->Intern("d"), {});

  std::vector<std::vector<Atom>> windows = {
      {a, d},  // Model: {a, b, d} (c blocked by d).
      {a},     // Model: {a, b, c}.
      {d},     // a's rules retracted: model must be exactly {d}.
      {},      // Everything gone.
  };
  // Tiny windows would otherwise trip the grounder's fallback fraction
  // and reground from scratch; force the delta path so the retraction
  // replay is what this test exercises.
  SolverStats total;
  CheckSlidingStream(*program, windows, &total,
                     /*fallback_delta_fraction=*/100.0);
  EXPECT_GT(total.rules_retracted, 0u);
  EXPECT_GT(total.rules_new, 0u);
}

TEST(IncrementalSolverTest, WarmStartGuidesOverlappingChoiceWindows) {
  // A non-stratified program with real search: warm starts must leave the
  // enumerated model set untouched while the hit counter records the
  // guided windows.
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input on/1.
    pick(X) :- on(X), not skip(X).
    skip(X) :- on(X), not pick(X).
    :- pick(1), pick(2).
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  const SymbolId on = symbols->Intern("on");
  auto fact = [&](int i) { return Atom(on, {Term::Integer(i)}); };

  std::vector<std::vector<Atom>> windows = {
      {fact(1), fact(2)},
      {fact(1), fact(2), fact(3)},
      {fact(2), fact(3)},
      {fact(2), fact(3), fact(4)},
  };
  SolverStats total;
  CheckSlidingStream(*program, windows, &total);
  EXPECT_GT(total.warm_start_hits, 0u);
  EXPECT_GT(total.incremental_solve_windows, 0u);
}

TEST(IncrementalSolverTest, OutOfSyncDeltaIsReportedNotMisapplied) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input a/0.
    b :- a.
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  const Atom a(symbols->Intern("a"), {});

  IncrementalGroundingOptions incremental;
  incremental.assemble_output = false;
  // A tiny fallback threshold would defeat the point: keep the default so
  // window 1's one-fact delta stays incremental.
  IncrementalGrounder grounder(&*program, GroundingOptions{}, incremental);
  ASSERT_TRUE(grounder.GroundWindow(0, {a}).ok());
  ASSERT_TRUE(grounder.GroundWindow(1, {}).ok());
  ASSERT_TRUE(grounder.last_delta().full_rebuild == false ||
              grounder.last_delta().retracted_slots.empty());

  // A fresh solver that never consumed window 0's full_rebuild delta must
  // refuse window 1's incremental delta instead of patching garbage.
  IncrementalSolver solver;
  std::vector<AnswerSet> models;
  if (!grounder.last_delta().full_rebuild) {
    const Status status = solver.SolveWindow(
        grounder.last_delta(), grounder.cached_rules(),
        grounder.atom_table().size(), &models);
    EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition) << status;
    EXPECT_FALSE(solver.valid());
  }
}

TEST(IncrementalSolverTest, DoubleAppliedDeltaIsRejectedBySequenceChain) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  // d occurs only in a rule that also needs the never-arriving b, so
  // admitting fact d instantiates nothing.
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input a/0, b/0, d/0.
    c :- a, b.
    e :- d, b.
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  const Atom a(symbols->Intern("a"), {});
  const Atom d(symbols->Intern("d"), {});

  IncrementalGroundingOptions incremental;
  incremental.assemble_output = false;
  incremental.fallback_delta_fraction = 100.0;  // Stay on the delta path.
  IncrementalGrounder grounder(&*program, GroundingOptions{}, incremental);
  IncrementalSolver solver;
  std::vector<AnswerSet> models;

  ASSERT_TRUE(grounder.GroundWindow(0, {a}).ok());
  ASSERT_TRUE(solver
                  .SolveWindow(grounder.last_delta(),
                               grounder.cached_rules(),
                               grounder.atom_table().size(), &models)
                  .ok());
  // Fact d feeds no rule, so window 1's delta carries an empty rule
  // delta — the store-size checks hold trivially on a replay.
  ASSERT_TRUE(grounder.GroundWindow(1, {a, d}).ok());
  ASSERT_FALSE(grounder.last_delta().full_rebuild);
  ASSERT_TRUE(grounder.last_delta().retracted_slots.empty());
  ASSERT_TRUE(solver
                  .SolveWindow(grounder.last_delta(),
                               grounder.cached_rules(),
                               grounder.atom_table().size(), &models)
                  .ok());
  // Replaying window 1's delta would double-count fact d; only the
  // sequence chain can catch it.
  const Status replay = solver.SolveWindow(
      grounder.last_delta(), grounder.cached_rules(),
      grounder.atom_table().size(), &models);
  EXPECT_EQ(replay.code(), StatusCode::kFailedPrecondition) << replay;
}

TEST(IncrementalSolverTest, MaxModelsCapIsHonoured) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input on/1.
    p(X) :- on(X), not q(X).
    q(X) :- on(X), not p(X).
  )");
  ASSERT_TRUE(program.ok()) << program.status();
  const SymbolId on = symbols->Intern("on");

  SolverOptions options;
  options.max_models = 2;
  IncrementalGroundingOptions incremental;
  incremental.assemble_output = false;
  IncrementalGrounder grounder(&*program, GroundingOptions{}, incremental);
  IncrementalSolver solver(options);

  const std::vector<Atom> facts = {Atom(on, {Term::Integer(1)}),
                                   Atom(on, {Term::Integer(2)})};
  ASSERT_TRUE(grounder.GroundWindow(0, facts).ok());
  std::vector<AnswerSet> models;
  const Status status = solver.SolveWindow(
      grounder.last_delta(), grounder.cached_rules(),
      grounder.atom_table().size(), &models);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(models.size(), 2u);  // 4 exist; the cap keeps 2.
}

}  // namespace
}  // namespace streamasp
