#include <gtest/gtest.h>

#include "asp/parser.h"
#include "asp/program.h"
#include "asp/rule.h"

namespace streamasp {
namespace {

class RuleTest : public ::testing::Test {
 protected:
  RuleTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Rule ParseRule(const std::string& text) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_TRUE(program.ok()) << program.status();
    EXPECT_EQ(program->rules().size(), 1u);
    return program->rules().front();
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

TEST_F(RuleTest, FactShape) {
  const Rule rule = ParseRule("p(1).");
  EXPECT_TRUE(rule.is_fact());
  EXPECT_FALSE(rule.is_constraint());
  EXPECT_FALSE(rule.is_disjunctive());
  EXPECT_TRUE(rule.IsGround());
}

TEST_F(RuleTest, ConstraintShape) {
  const Rule rule = ParseRule(":- p(1), q(2).");
  EXPECT_TRUE(rule.is_constraint());
  EXPECT_FALSE(rule.is_fact());
}

TEST_F(RuleTest, DisjunctiveShape) {
  const Rule rule = ParseRule("a | b | c :- d.");
  EXPECT_TRUE(rule.is_disjunctive());
  EXPECT_EQ(rule.head().size(), 3u);
}

TEST_F(RuleTest, PositiveAndNegativeBodyAtoms) {
  const Rule rule = ParseRule("h(X) :- p(X), not q(X), X > 3, not r(X).");
  EXPECT_EQ(rule.PositiveBodyAtoms().size(), 1u);
  EXPECT_EQ(rule.NegativeBodyAtoms().size(), 2u);
  EXPECT_FALSE(rule.IsGround());
}

TEST_F(RuleTest, VariablesFirstOccurrenceOrder) {
  const Rule rule = ParseRule("h(Y, X) :- p(X, Y), q(Z).");
  const std::vector<SymbolId> vars = rule.Variables();
  ASSERT_EQ(vars.size(), 3u);
  EXPECT_EQ(symbols_->NameOf(vars[0]), "Y");
  EXPECT_EQ(symbols_->NameOf(vars[1]), "X");
  EXPECT_EQ(symbols_->NameOf(vars[2]), "Z");
}

TEST_F(RuleTest, SafetyViolationInHead) {
  const Rule rule = ParseRule("h(X, Y) :- p(X).");
  const std::vector<SymbolId> unsafe = rule.UnsafeVariables();
  ASSERT_EQ(unsafe.size(), 1u);
  EXPECT_EQ(symbols_->NameOf(unsafe[0]), "Y");
}

TEST_F(RuleTest, SafetyViolationInNegativeLiteral) {
  const Rule rule = ParseRule("h :- p, not q(X).");
  EXPECT_EQ(rule.UnsafeVariables().size(), 1u);
}

TEST_F(RuleTest, SafetyViolationInComparison) {
  const Rule rule = ParseRule("h :- p, X < 3.");
  EXPECT_EQ(rule.UnsafeVariables().size(), 1u);
}

TEST_F(RuleTest, SafeRuleHasNoUnsafeVariables) {
  const Rule rule = ParseRule("h(X) :- p(X, Y), not q(Y), Y > X.");
  EXPECT_TRUE(rule.UnsafeVariables().empty());
}

TEST_F(RuleTest, ToStringRoundTripReparses) {
  const Rule rule = ParseRule("a(X) | b(X) :- c(X, Y), not d(Y), Y >= 2.");
  const std::string text = rule.ToString(*symbols_);
  const Rule reparsed = ParseRule(text);
  EXPECT_EQ(rule, reparsed) << text;
}

class ProgramTest : public ::testing::Test {
 protected:
  ProgramTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Program Parse(const std::string& text) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_TRUE(program.ok()) << program.status();
    return std::move(program).value();
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

TEST_F(ProgramTest, AllPredicatesCollectsHeadsAndBodies) {
  const Program program = Parse("h(X) :- p(X), not q(X). r(1).");
  EXPECT_EQ(program.AllPredicates().size(), 4u);  // h, p, q, r.
}

TEST_F(ProgramTest, IdbEdbClassification) {
  const Program program = Parse(R"(
    derived(X) :- base(X).
    base(1).
    other(2).
  )");
  const auto idb = program.IdbPredicates();
  ASSERT_EQ(idb.size(), 1u);
  EXPECT_EQ(symbols_->NameOf(idb[0].name), "derived");
  const auto edb = program.EdbPredicates();
  EXPECT_EQ(edb.size(), 2u);  // base, other — facts are extensional.
}

TEST_F(ProgramTest, InputPredicateDeclarationIsIdempotent) {
  Program program = Parse("h(X) :- p(X).");
  const PredicateSignature p{symbols_->Intern("p"), 1};
  program.DeclareInputPredicate(p);
  program.DeclareInputPredicate(p);
  EXPECT_EQ(program.input_predicates().size(), 1u);
}

TEST_F(ProgramTest, ValidateAcceptsSafeProgram) {
  const Program program = Parse(R"(
    #input p/1.
    h(X) :- p(X).
  )");
  EXPECT_TRUE(program.Validate().ok());
}

TEST_F(ProgramTest, ValidateRejectsUnsafeRule) {
  const Program program = Parse("h(X) :- q.");
  const Status status = program.Validate();
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unsafe"), std::string::npos);
}

TEST_F(ProgramTest, ValidateRejectsUnknownInputPredicate) {
  Program program = Parse("h(X) :- p(X).");
  program.DeclareInputPredicate(
      PredicateSignature{symbols_->Intern("ghost"), 2});
  EXPECT_EQ(program.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProgramTest, ValidateRejectsArityMismatchedInputPredicate) {
  // p is used with arity 1; declaring p/3 as input must fail.
  Program program = Parse("h(X) :- p(X).");
  program.DeclareInputPredicate(PredicateSignature{symbols_->Intern("p"), 3});
  EXPECT_EQ(program.Validate().code(), StatusCode::kInvalidArgument);
}

TEST_F(ProgramTest, ToStringListsAllRules) {
  const Program program = Parse("a. b :- a. :- c.");
  const std::string text = program.ToString();
  EXPECT_NE(text.find("a."), std::string::npos);
  EXPECT_NE(text.find("b :- a."), std::string::npos);
  EXPECT_NE(text.find(":- c."), std::string::npos);
}

TEST_F(ProgramTest, ShownPredicatesRecorded) {
  const Program program = Parse(R"(
    #show h/1.
    h(X) :- p(X).
  )");
  ASSERT_EQ(program.shown_predicates().size(), 1u);
  EXPECT_EQ(symbols_->NameOf(program.shown_predicates()[0].name), "h");
}

}  // namespace
}  // namespace streamasp
