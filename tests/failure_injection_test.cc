// Failure-injection and edge-condition tests for the streaming pipeline:
// inconsistent partition programs, malformed stream items, resource
// limits, arity conflicts, and empty/degenerate windows.

#include <string>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "depgraph/decomposition.h"
#include "streamrule/accuracy.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/random_partitioner.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class FailureInjectionTest : public ::testing::Test {
 protected:
  FailureInjectionTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Atom A(const std::string& text) {
    StatusOr<Atom> atom = parser_.ParseGroundAtom(text);
    EXPECT_TRUE(atom.ok()) << atom.status();
    return std::move(atom).value();
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

TEST_F(FailureInjectionTest, InconsistentWindowYieldsNoAnswers) {
  // The constraint fires on the window content: no stable model.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input reading/2.
    broken :- reading(S, V), V > 100.
    :- broken.
  )");
  ASSERT_TRUE(program.ok());
  Reasoner reasoner(&*program);
  StatusOr<ReasonerResult> result =
      reasoner.ProcessFacts({A("reading(s1, 500)")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answers.empty());
}

TEST_F(FailureInjectionTest, OneInconsistentPartitionPoisonsTheCombination) {
  // Partition 1 is inconsistent; the combining handler's cross product is
  // empty — exactly the paper's Ans_P(W) formula.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input good/1, bad/1.
    ok(X) :- good(X).
    :- bad(X).
  )");
  ASSERT_TRUE(program.ok());
  PartitioningPlan plan(2);
  plan.Assign(PredicateSignature{symbols_->Intern("good"), 1}, 0);
  plan.Assign(PredicateSignature{symbols_->Intern("bad"), 1}, 1);
  ParallelReasoner pr(&*program, plan);
  StatusOr<ParallelReasonerResult> result =
      pr.ProcessFacts({A("good(1)"), A("bad(2)")});
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->answers.empty());
  // Against a reference with answers, accuracy collapses to 0.
  EXPECT_DOUBLE_EQ(MeanAccuracy(result->answers, {{A("good(1)")}}), 0.0);
}

TEST_F(FailureInjectionTest, UndeclaredStreamPredicateFailsConversion) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  Reasoner reasoner(&*program);
  TripleWindow window;
  window.items = {Triple{Term::Integer(1), symbols_->Intern("mystery"),
                         Term::Integer(2)}};
  EXPECT_EQ(reasoner.Process(window).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FailureInjectionTest, ProcessFactsBypassesTripleArityLimit) {
  // Arity-3 input predicates cannot travel as triples but work as facts.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input gps/3.
    seen(V) :- gps(V, X, Y), X > 0, Y > 0.
  )");
  ASSERT_TRUE(program.ok());
  Reasoner reasoner(&*program);
  StatusOr<ReasonerResult> result =
      reasoner.ProcessFacts({A("gps(car1, 3, 4)")});
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->answers.size(), 1u);
  EXPECT_EQ(result->answers[0].size(), 2u);  // gps fact + seen(car1).
}

TEST_F(FailureInjectionTest, SolverDecisionLimitSurfacesThroughReasoner) {
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input seed/1.
    a(X) :- seed(X), not b(X).
    b(X) :- seed(X), not a(X).
  )");
  ASSERT_TRUE(program.ok());
  ReasonerOptions options;
  options.solving.max_decisions = 2;
  Reasoner reasoner(&*program, options);
  std::vector<Atom> window;
  for (int i = 0; i < 10; ++i) {
    window.push_back(A("seed(" + std::to_string(i) + ")"));
  }
  EXPECT_EQ(reasoner.ProcessFacts(window).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(FailureInjectionTest, GrounderRuleLimitSurfacesThroughReasoner) {
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input n/1.
    count(s(X)) :- count(X).
    count(X) :- n(X).
  )");
  ASSERT_TRUE(program.ok());
  ReasonerOptions options;
  options.grounding.max_ground_rules = 50;
  Reasoner reasoner(&*program, options);
  EXPECT_EQ(reasoner.ProcessFacts({A("n(0)")}).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(FailureInjectionTest, ManyAnswerSetsHitCombiningCap) {
  // Each partition's program has 2^4 = 16 answer sets; the default
  // combining cap (256) binds at 16 * 16 = 256.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input l/1, r/1.
    pick(X) :- l(X), not drop(X).
    drop(X) :- l(X), not pick(X).
    pick(X) :- r(X), not drop(X).
    drop(X) :- r(X), not pick(X).
  )");
  ASSERT_TRUE(program.ok());
  PartitioningPlan plan(2);
  plan.Assign(PredicateSignature{symbols_->Intern("l"), 1}, 0);
  plan.Assign(PredicateSignature{symbols_->Intern("r"), 1}, 1);
  ParallelReasonerOptions options;
  options.combining.max_combined_answers = 32;
  ParallelReasoner pr(&*program, plan, options);
  std::vector<Atom> window;
  for (int i = 0; i < 4; ++i) {
    window.push_back(A("l(" + std::to_string(i) + ")"));
    window.push_back(A("r(" + std::to_string(100 + i) + ")"));
  }
  StatusOr<ParallelReasonerResult> result = pr.ProcessFacts(window);
  ASSERT_TRUE(result.ok());
  EXPECT_LE(result->answers.size(), 32u);
  EXPECT_GT(result->answers.size(), 0u);
}

TEST_F(FailureInjectionTest, EmptyPartitionsAreHarmless) {
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph = InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(plan.ok());
  ParallelReasoner pr(&*program, *plan);
  // A window with only location-family items: the car-fire partition is
  // empty but must still produce its (empty-window) answer.
  StatusOr<ParallelReasonerResult> result = pr.ProcessFacts(
      {A("average_speed(9, 10)"), A("car_number(9, 50)")});
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->answers.size(), 1u);
  // traffic_jam(9) derived despite one partition being empty.
  bool found = false;
  for (const Atom& atom : result->answers[0]) {
    if (symbols_->NameOf(atom.predicate()) == "traffic_jam") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(FailureInjectionTest, RandomPartitionOfEmptyWindow) {
  RandomPartitioner partitioner(3, 1);
  const auto partitions = partitioner.PartitionFacts({});
  ASSERT_EQ(partitions.size(), 3u);
  for (const auto& p : partitions) EXPECT_TRUE(p.empty());
}

TEST_F(FailureInjectionTest, NonDeterministicPartitionsCrossProduct) {
  // Two partitions x two answer sets each -> four combined answers.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input l/1, r/1.
    la :- l(X), not lb.
    lb :- l(X), not la.
    ra :- r(X), not rb.
    rb :- r(X), not ra.
  )");
  ASSERT_TRUE(program.ok());
  PartitioningPlan plan(2);
  plan.Assign(PredicateSignature{symbols_->Intern("l"), 1}, 0);
  plan.Assign(PredicateSignature{symbols_->Intern("r"), 1}, 1);
  ParallelReasoner pr(&*program, plan);
  StatusOr<ParallelReasonerResult> result =
      pr.ProcessFacts({A("l(1)"), A("r(2)")});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->answers.size(), 4u);
}

}  // namespace
}  // namespace streamasp
