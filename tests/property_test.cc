// Property-style suites over randomly generated programs and windows:
// solver soundness (every reported model passes the from-first-principles
// stable-model check), grounder/solver equivalence under simplification,
// and partitioning invariants.

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "depgraph/decomposition.h"
#include "ground/grounder.h"
#include "solve/solver.h"
#include "streamrule/partitioning_handler.h"
#include "streamrule/random_partitioner.h"
#include "util/rng.h"

namespace streamasp {
namespace {

/// Generates a small random normal program over atoms a0..a{n-1}:
/// a mix of facts, positive rules, negated rules and constraints. The
/// programs are propositional so the whole space is exercised cheaply.
std::string RandomProgram(uint64_t seed) {
  Rng rng(seed);
  const int num_atoms = 3 + static_cast<int>(rng.NextBounded(5));
  const int num_rules = 2 + static_cast<int>(rng.NextBounded(10));
  std::string text;
  auto atom = [&](int i) { return "a" + std::to_string(i); };
  for (int r = 0; r < num_rules; ++r) {
    const int kind = static_cast<int>(rng.NextBounded(10));
    if (kind < 2) {
      text += atom(static_cast<int>(rng.NextBounded(num_atoms))) + ".\n";
      continue;
    }
    const bool constraint = kind == 9;
    const int body_len = 1 + static_cast<int>(rng.NextBounded(3));
    std::string body;
    for (int b = 0; b < body_len; ++b) {
      if (b > 0) body += ", ";
      if (rng.NextBounded(3) == 0) body += "not ";
      body += atom(static_cast<int>(rng.NextBounded(num_atoms)));
    }
    if (constraint) {
      text += ":- " + body + ".\n";
    } else {
      text += atom(static_cast<int>(rng.NextBounded(num_atoms))) + " :- " +
              body + ".\n";
    }
  }
  return text;
}

class SolverSoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverSoundnessTest, EveryModelPassesStableCheck) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  const std::string text = RandomProgram(GetParam());
  StatusOr<Program> program = parser.ParseProgram(text);
  ASSERT_TRUE(program.ok()) << text;

  GroundingOptions raw;
  raw.simplify = false;
  Grounder grounder(raw);
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok()) << text;

  SolverOptions options;
  options.verify_models = false;  // The check below must pass on its own.
  Solver solver(options);
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  ASSERT_TRUE(models.ok()) << text;
  for (const AnswerSet& model : *models) {
    EXPECT_TRUE(IsStableModel(*ground, model.atoms))
        << "non-stable model for program:\n"
        << text;
  }
}

TEST_P(SolverSoundnessTest, ModelsAreUniqueAndSorted) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(RandomProgram(GetParam()));
  ASSERT_TRUE(program.ok());
  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok());
  Solver solver;
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  ASSERT_TRUE(models.ok());
  std::set<std::vector<GroundAtomId>> seen;
  for (const AnswerSet& model : *models) {
    EXPECT_TRUE(std::is_sorted(model.atoms.begin(), model.atoms.end()));
    EXPECT_TRUE(seen.insert(model.atoms).second)
        << "duplicate answer set reported";
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SolverSoundnessTest,
                         ::testing::Range<uint64_t>(0, 40));

/// Simplified and raw grounding must describe the same answer sets.
class SimplifyEquivalenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifyEquivalenceTest, SameModels) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  const std::string text = RandomProgram(GetParam() ^ 0x5EED);
  StatusOr<Program> program = parser.ParseProgram(text);
  ASSERT_TRUE(program.ok());

  auto solve_with = [&](bool simplify) {
    GroundingOptions options;
    options.simplify = simplify;
    Grounder grounder(options);
    StatusOr<GroundProgram> ground = grounder.Ground(*program);
    EXPECT_TRUE(ground.ok());
    Solver solver;
    StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
    EXPECT_TRUE(models.ok());
    // Render as atom-string sets: atom ids differ between groundings.
    std::set<std::set<std::string>> out;
    for (const AnswerSet& model : *models) {
      std::set<std::string> atoms;
      for (GroundAtomId id : model.atoms) {
        atoms.insert(ground->atoms().GetAtom(id).ToString(*symbols));
      }
      out.insert(std::move(atoms));
    }
    return out;
  };

  EXPECT_EQ(solve_with(true), solve_with(false)) << text;
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, SimplifyEquivalenceTest,
                         ::testing::Range<uint64_t>(0, 40));

/// Partitioning invariants on random windows and plans.
class PartitioningPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(PartitioningPropertyTest, PlanPartitionCoversAndRespectsPlan) {
  Rng rng(GetParam());
  SymbolTablePtr symbols = MakeSymbolTable();

  const int num_preds = 2 + static_cast<int>(rng.NextBounded(5));
  const int num_communities = 1 + static_cast<int>(rng.NextBounded(3));
  PartitioningPlan plan(num_communities);
  std::vector<PredicateSignature> signatures;
  for (int p = 0; p < num_preds; ++p) {
    const PredicateSignature sig{
        symbols->Intern("p" + std::to_string(p)), 1};
    signatures.push_back(sig);
    // Every predicate lands in >= 1 community; some get duplicated.
    plan.Assign(sig, static_cast<int>(rng.NextBounded(num_communities)));
    if (rng.NextBounded(4) == 0) {
      plan.Assign(sig, static_cast<int>(rng.NextBounded(num_communities)));
    }
  }
  PartitioningHandler handler(plan);

  std::vector<Atom> window;
  const size_t items = 50 + rng.NextBounded(200);
  for (size_t i = 0; i < items; ++i) {
    const PredicateSignature& sig =
        signatures[rng.NextBounded(signatures.size())];
    window.push_back(Atom(sig.name, {Term::Integer(
        static_cast<int64_t>(rng.NextBounded(100)))}));
  }

  const auto partitions = handler.PartitionFacts(window);
  ASSERT_EQ(partitions.size(), static_cast<size_t>(num_communities));

  // (1) Every window item appears in exactly the communities of its
  // predicate; (2) partitions contain no foreign predicates; (3) totals
  // match the sum of community multiplicities.
  size_t expected_total = 0;
  for (const Atom& item : window) {
    expected_total += plan.CommunitiesOf(item.signature()).size();
  }
  size_t actual_total = 0;
  for (int c = 0; c < num_communities; ++c) {
    actual_total += partitions[c].size();
    for (const Atom& item : partitions[c]) {
      const std::vector<int>& communities =
          plan.CommunitiesOf(item.signature());
      EXPECT_TRUE(std::binary_search(communities.begin(), communities.end(),
                                     c))
          << "atom routed to a community its predicate is not mapped to";
    }
  }
  EXPECT_EQ(actual_total, expected_total);
  EXPECT_EQ(handler.stray_items(), 0u);
}

TEST_P(PartitioningPropertyTest, RandomPartitionIsAPartition) {
  Rng rng(GetParam() ^ 0xFACE);
  SymbolTablePtr symbols = MakeSymbolTable();
  std::vector<Atom> window;
  const size_t items = 20 + rng.NextBounded(100);
  for (size_t i = 0; i < items; ++i) {
    window.push_back(Atom(symbols->Intern("p"),
                          {Term::Integer(static_cast<int64_t>(i))}));
  }
  const size_t k = 1 + rng.NextBounded(6);
  RandomPartitioner partitioner(k, GetParam());
  const auto partitions = partitioner.PartitionFacts(window);
  ASSERT_EQ(partitions.size(), k);

  // Disjoint cover: every item in exactly one partition, order preserved
  // within partitions.
  std::vector<Atom> reassembled;
  for (const auto& partition : partitions) {
    reassembled.insert(reassembled.end(), partition.begin(), partition.end());
  }
  EXPECT_EQ(reassembled.size(), window.size());
  std::sort(reassembled.begin(), reassembled.end());
  std::vector<Atom> sorted_window = window;
  std::sort(sorted_window.begin(), sorted_window.end());
  EXPECT_EQ(reassembled, sorted_window);
}

INSTANTIATE_TEST_SUITE_P(RandomWindows, PartitioningPropertyTest,
                         ::testing::Range<uint64_t>(0, 20));

}  // namespace
}  // namespace streamasp
