#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/components.h"
#include "graph/graph.h"
#include "util/rng.h"

namespace streamasp {
namespace {

// ------------------------------------------------------ UndirectedGraph.

TEST(UndirectedGraphTest, AddNodesAndEdges) {
  UndirectedGraph g(3);
  EXPECT_EQ(g.num_nodes(), 3u);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2, 2.5);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
  EXPECT_FALSE(g.HasEdge(0, 2));
}

TEST(UndirectedGraphTest, AddNodeGrows) {
  UndirectedGraph g;
  EXPECT_EQ(g.AddNode(), 0u);
  EXPECT_EQ(g.AddNode(), 1u);
  EXPECT_EQ(g.num_nodes(), 2u);
}

TEST(UndirectedGraphTest, SelfLoops) {
  UndirectedGraph g(2);
  EXPECT_FALSE(g.HasSelfLoop(0));
  g.AddEdge(0, 0, 3.0);
  EXPECT_TRUE(g.HasSelfLoop(0));
  EXPECT_TRUE(g.HasEdge(0, 0));
  EXPECT_DOUBLE_EQ(g.SelfLoopWeight(0), 3.0);
  EXPECT_FALSE(g.HasSelfLoop(1));
  // Self-loops are not in the neighbor list.
  EXPECT_TRUE(g.Neighbors(0).empty());
}

TEST(UndirectedGraphTest, TotalWeightCountsLoopsOnce) {
  UndirectedGraph g(3);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(2, 2, 5.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 7.0);
}

TEST(UndirectedGraphTest, WeightedDegreeCountsLoopsTwice) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 2.0);
  g.AddEdge(0, 0, 1.5);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 2.0 + 3.0);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(1), 2.0);
}

TEST(UndirectedGraphTest, ParallelEdgesAccumulate) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 1, 2.0);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_DOUBLE_EQ(g.WeightedDegree(0), 3.0);
}

// --------------------------------------------------------------- Digraph.

TEST(DigraphTest, EdgesAndAdjacency) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_FALSE(g.HasEdge(1, 0));
  EXPECT_EQ(g.Successors(1).size(), 1u);
  EXPECT_EQ(g.Predecessors(1).size(), 1u);
}

TEST(DigraphTest, ReachabilityIncludesSelf) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const std::vector<NodeId> reachable = g.ReachableFrom(0);
  EXPECT_EQ(reachable, (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(g.ReachableFrom(3), (std::vector<NodeId>{3}));
}

TEST(DigraphTest, ReachabilityFollowsDirection) {
  Digraph g(3);
  g.AddEdge(1, 0);
  const std::vector<bool> set = g.ReachableSetFrom(0);
  EXPECT_TRUE(set[0]);
  EXPECT_FALSE(set[1]);
}

TEST(DigraphTest, ReachabilityHandlesCycles) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 0);
  g.AddEdge(1, 2);
  EXPECT_EQ(g.ReachableFrom(0).size(), 3u);
}

// -------------------------------------------------- Connected components.

TEST(ConnectedComponentsTest, TwoIslands) {
  UndirectedGraph g(5);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  const ComponentAssignment c = ConnectedComponents(g);
  EXPECT_EQ(c.num_components, 2);
  EXPECT_EQ(c.component_of[0], c.component_of[2]);
  EXPECT_NE(c.component_of[0], c.component_of[3]);
  const auto groups = c.Groups();
  EXPECT_EQ(groups[0], (std::vector<NodeId>{0, 1, 2}));
  EXPECT_EQ(groups[1], (std::vector<NodeId>{3, 4}));
}

TEST(ConnectedComponentsTest, IsolatedNodesAreSingletons) {
  UndirectedGraph g(3);
  EXPECT_EQ(ConnectedComponents(g).num_components, 3);
}

TEST(ConnectedComponentsTest, SelfLoopsDoNotConnect) {
  UndirectedGraph g(2);
  g.AddEdge(0, 0);
  EXPECT_EQ(ConnectedComponents(g).num_components, 2);
}

TEST(IsConnectedTest, Cases) {
  UndirectedGraph empty;
  EXPECT_TRUE(IsConnected(empty));
  UndirectedGraph single(1);
  EXPECT_TRUE(IsConnected(single));
  UndirectedGraph pair(2);
  EXPECT_FALSE(IsConnected(pair));
  pair.AddEdge(0, 1);
  EXPECT_TRUE(IsConnected(pair));
}

// ------------------------------------------------------------------ SCC.

TEST(SccTest, ChainIsTopologicallyNumbered) {
  Digraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  const ComponentAssignment c = StronglyConnectedComponents(g);
  EXPECT_EQ(c.num_components, 3);
  EXPECT_LT(c.component_of[0], c.component_of[1]);
  EXPECT_LT(c.component_of[1], c.component_of[2]);
}

TEST(SccTest, CycleCollapses) {
  Digraph g(4);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(2, 0);
  g.AddEdge(2, 3);
  const ComponentAssignment c = StronglyConnectedComponents(g);
  EXPECT_EQ(c.num_components, 2);
  EXPECT_EQ(c.component_of[0], c.component_of[1]);
  EXPECT_EQ(c.component_of[0], c.component_of[2]);
  EXPECT_LT(c.component_of[0], c.component_of[3]);
}

TEST(SccTest, SelfLoopIsItsOwnScc) {
  Digraph g(2);
  g.AddEdge(0, 0);
  g.AddEdge(0, 1);
  const ComponentAssignment c = StronglyConnectedComponents(g);
  EXPECT_EQ(c.num_components, 2);
}

// Property: on random digraphs, every cross-component edge respects the
// topological numbering, and nodes on a common cycle share a component.
class SccPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SccPropertyTest, CrossEdgesRespectTopologicalOrder) {
  Rng rng(GetParam());
  const NodeId n = 2 + static_cast<NodeId>(rng.NextBounded(40));
  Digraph g(n);
  const size_t edges = rng.NextBounded(3 * n);
  for (size_t i = 0; i < edges; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<NodeId>(rng.NextBounded(n)));
  }
  const ComponentAssignment c = StronglyConnectedComponents(g);
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId v : g.Successors(u)) {
      EXPECT_LE(c.component_of[u], c.component_of[v])
          << "edge " << u << "->" << v << " violates topological order";
    }
  }
}

TEST_P(SccPropertyTest, MutuallyReachableNodesShareComponent) {
  Rng rng(GetParam() ^ 0xABCDEF);
  const NodeId n = 2 + static_cast<NodeId>(rng.NextBounded(25));
  Digraph g(n);
  const size_t edges = rng.NextBounded(3 * n);
  for (size_t i = 0; i < edges; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<NodeId>(rng.NextBounded(n)));
  }
  const ComponentAssignment c = StronglyConnectedComponents(g);
  for (NodeId u = 0; u < n; ++u) {
    const std::vector<bool> from_u = g.ReachableSetFrom(u);
    for (NodeId v = 0; v < n; ++v) {
      const std::vector<bool> from_v = g.ReachableSetFrom(v);
      const bool mutually = from_u[v] && from_v[u];
      EXPECT_EQ(mutually, c.component_of[u] == c.component_of[v])
          << "nodes " << u << ", " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, SccPropertyTest,
                         ::testing::Range<uint64_t>(0, 12));

}  // namespace
}  // namespace streamasp
