// BoundedQueue: FIFO semantics, close/drain, and the three backpressure
// policies, including a multi-producer/multi-consumer stress per policy.

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <numeric>
#include <set>
#include <thread>
#include <vector>

#include "util/bounded_queue.h"

namespace streamasp {
namespace {

TEST(BoundedQueueTest, FifoAndCounters) {
  BoundedQueue<int> queue(4);
  EXPECT_EQ(queue.capacity(), 4u);
  EXPECT_EQ(queue.Push(1), QueuePushResult::kOk);
  EXPECT_EQ(queue.Push(2), QueuePushResult::kOk);
  EXPECT_EQ(queue.size(), 2u);

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  EXPECT_EQ(queue.TryPop(), std::nullopt);

  const BoundedQueueStats stats = queue.stats();
  EXPECT_EQ(stats.pushed, 2u);
  EXPECT_EQ(stats.popped, 2u);
  EXPECT_EQ(stats.max_depth, 2u);
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.rejected, 0u);
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0, BackpressurePolicy::kReject);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_EQ(queue.Push(1), QueuePushResult::kOk);
  EXPECT_EQ(queue.Push(2), QueuePushResult::kRejected);
}

TEST(BoundedQueueTest, CloseDrainsThenStopsConsumers) {
  BoundedQueue<int> queue(4);
  ASSERT_EQ(queue.Push(7), QueuePushResult::kOk);
  queue.Close();
  EXPECT_EQ(queue.Push(8), QueuePushResult::kClosed);

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));  // Queued items survive Close.
  EXPECT_EQ(out, 7);
  EXPECT_FALSE(queue.Pop(&out));  // Then Pop reports shutdown.
  EXPECT_TRUE(queue.closed());
}

TEST(BoundedQueueTest, CloseWakesBlockedProducer) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_EQ(queue.Push(1), QueuePushResult::kOk);

  std::atomic<bool> returned{false};
  QueuePushResult result = QueuePushResult::kOk;
  std::thread producer([&] {
    result = queue.Push(2);  // Blocks: queue is full.
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned);
  queue.Close();
  producer.join();
  EXPECT_EQ(result, QueuePushResult::kClosed);
}

TEST(BoundedQueueTest, BlockPolicyBlocksUntilConsumerMakesRoom) {
  BoundedQueue<int> queue(1, BackpressurePolicy::kBlock);
  ASSERT_EQ(queue.Push(1), QueuePushResult::kOk);

  std::atomic<bool> returned{false};
  std::thread producer([&] {
    EXPECT_EQ(queue.Push(2), QueuePushResult::kOk);
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned);

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(returned);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
}

TEST(BoundedQueueTest, DropOldestEvictsFrontAndReturnsIt) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kDropOldest);
  EXPECT_EQ(queue.Push(1), QueuePushResult::kOk);
  EXPECT_EQ(queue.Push(2), QueuePushResult::kOk);

  int displaced = 0;
  EXPECT_EQ(queue.Push(3, &displaced), QueuePushResult::kDroppedOldest);
  EXPECT_EQ(displaced, 1);
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.stats().dropped, 1u);

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(out, 3);
}

TEST(BoundedQueueTest, RejectRefusesWhenFull) {
  BoundedQueue<int> queue(2, BackpressurePolicy::kReject);
  EXPECT_EQ(queue.Push(1), QueuePushResult::kOk);
  EXPECT_EQ(queue.Push(2), QueuePushResult::kOk);
  EXPECT_EQ(queue.Push(3), QueuePushResult::kRejected);
  EXPECT_EQ(queue.stats().rejected, 1u);
  EXPECT_EQ(queue.size(), 2u);

  int out = 0;
  ASSERT_TRUE(queue.Pop(&out));
  EXPECT_EQ(queue.Push(4), QueuePushResult::kOk);
}

// MPMC stress: `producers` threads push `per_producer` unique ints through
// a small queue while `consumers` threads drain it. Returns the multiset
// of consumed values as a sorted vector.
std::vector<int> RunStress(BoundedQueue<int>& queue, int producers,
                           int per_producer, int consumers,
                           std::vector<int>* displaced_out) {
  std::mutex sink_mutex;
  std::vector<int> consumed;
  std::vector<int> displaced;

  std::vector<std::thread> consumer_threads;
  for (int c = 0; c < consumers; ++c) {
    consumer_threads.emplace_back([&] {
      int value = 0;
      while (queue.Pop(&value)) {
        std::lock_guard<std::mutex> lock(sink_mutex);
        consumed.push_back(value);
      }
    });
  }

  std::vector<std::thread> producer_threads;
  for (int p = 0; p < producers; ++p) {
    producer_threads.emplace_back([&, p] {
      for (int i = 0; i < per_producer; ++i) {
        const int value = p * per_producer + i;
        int evicted = -1;
        const QueuePushResult result = queue.Push(value, &evicted);
        if (result == QueuePushResult::kDroppedOldest) {
          std::lock_guard<std::mutex> lock(sink_mutex);
          displaced.push_back(evicted);
        }
      }
    });
  }
  for (std::thread& t : producer_threads) t.join();
  queue.Close();
  for (std::thread& t : consumer_threads) t.join();

  std::sort(consumed.begin(), consumed.end());
  if (displaced_out != nullptr) {
    std::sort(displaced.begin(), displaced.end());
    *displaced_out = std::move(displaced);
  }
  return consumed;
}

constexpr int kProducers = 4;
constexpr int kPerProducer = 2000;
constexpr int kConsumers = 3;
constexpr int kTotal = kProducers * kPerProducer;

TEST(BoundedQueueStressTest, BlockPolicyIsLossless) {
  BoundedQueue<int> queue(8, BackpressurePolicy::kBlock);
  const std::vector<int> consumed =
      RunStress(queue, kProducers, kPerProducer, kConsumers, nullptr);

  // Every value exactly once, in some order.
  ASSERT_EQ(consumed.size(), static_cast<size_t>(kTotal));
  for (int i = 0; i < kTotal; ++i) EXPECT_EQ(consumed[i], i);

  const BoundedQueueStats stats = queue.stats();
  EXPECT_EQ(stats.pushed, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.popped, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_LE(stats.max_depth, 8u);
}

TEST(BoundedQueueStressTest, DropOldestAccountsForEveryItem) {
  BoundedQueue<int> queue(4, BackpressurePolicy::kDropOldest);
  std::vector<int> displaced;
  const std::vector<int> consumed =
      RunStress(queue, kProducers, kPerProducer, kConsumers, &displaced);

  // Admission is total (drop-oldest never refuses); each value ends up
  // consumed or displaced, never both, never twice.
  ASSERT_EQ(consumed.size() + displaced.size(), static_cast<size_t>(kTotal));
  std::vector<int> all(consumed);
  all.insert(all.end(), displaced.begin(), displaced.end());
  std::sort(all.begin(), all.end());
  for (int i = 0; i < kTotal; ++i) EXPECT_EQ(all[i], i);

  const BoundedQueueStats stats = queue.stats();
  EXPECT_EQ(stats.pushed, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.dropped, static_cast<uint64_t>(displaced.size()));
  EXPECT_EQ(stats.popped, static_cast<uint64_t>(consumed.size()));
  EXPECT_LE(stats.max_depth, 4u);
}

TEST(BoundedQueueStressTest, RejectNeverDuplicatesOrBlocks) {
  BoundedQueue<int> queue(4, BackpressurePolicy::kReject);
  const std::vector<int> consumed =
      RunStress(queue, kProducers, kPerProducer, kConsumers, nullptr);

  // No duplicates, and consumed + rejected covers every push attempt.
  std::set<int> unique(consumed.begin(), consumed.end());
  EXPECT_EQ(unique.size(), consumed.size());

  const BoundedQueueStats stats = queue.stats();
  EXPECT_EQ(stats.pushed, static_cast<uint64_t>(consumed.size()));
  EXPECT_EQ(stats.pushed + stats.rejected, static_cast<uint64_t>(kTotal));
  EXPECT_EQ(stats.dropped, 0u);
  EXPECT_LE(stats.max_depth, 4u);
}

}  // namespace
}  // namespace streamasp
