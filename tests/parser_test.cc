#include <gtest/gtest.h>

#include "asp/parser.h"

namespace streamasp {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  ParserTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Program MustParse(const std::string& text) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_TRUE(program.ok()) << program.status();
    return std::move(program).value();
  }

  Status ParseError(const std::string& text) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_FALSE(program.ok()) << "expected failure for: " << text;
    return program.ok() ? OkStatus() : program.status();
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

TEST_F(ParserTest, EmptyProgram) {
  EXPECT_TRUE(MustParse("").rules().empty());
  EXPECT_TRUE(MustParse("  % only a comment\n").rules().empty());
}

TEST_F(ParserTest, SimpleFact) {
  const Program p = MustParse("p(1).");
  ASSERT_EQ(p.rules().size(), 1u);
  EXPECT_TRUE(p.rules()[0].is_fact());
}

TEST_F(ParserTest, FactWithoutParens) {
  const Program p = MustParse("sunny.");
  EXPECT_EQ(p.rules()[0].head()[0].arity(), 0u);
}

TEST_F(ParserTest, RuleWithFullBody) {
  const Program p = MustParse(
      "traffic_jam(X) :- very_slow_speed(X), many_cars(X), "
      "not traffic_light(X).");
  const Rule& rule = p.rules()[0];
  EXPECT_EQ(rule.head().size(), 1u);
  EXPECT_EQ(rule.body().size(), 3u);
  EXPECT_TRUE(rule.body()[2].is_negative_atom());
}

TEST_F(ParserTest, NegativeIntegers) {
  const Program p = MustParse("p(-42).");
  EXPECT_EQ(p.rules()[0].head()[0].args()[0].integer_value(), -42);
}

TEST_F(ParserTest, ComparisonOperators) {
  const Program p = MustParse(
      "a(X) :- b(X), X < 1. c(X) :- b(X), X <= 2. d(X) :- b(X), X > 3. "
      "e(X) :- b(X), X >= 4. f(X) :- b(X), X == 5. g(X) :- b(X), X != 6. "
      "h(X) :- b(X), X = 7.");
  ASSERT_EQ(p.rules().size(), 7u);
  EXPECT_EQ(p.rules()[0].body()[1].op(), ComparisonOp::kLess);
  EXPECT_EQ(p.rules()[1].body()[1].op(), ComparisonOp::kLessEqual);
  EXPECT_EQ(p.rules()[2].body()[1].op(), ComparisonOp::kGreater);
  EXPECT_EQ(p.rules()[3].body()[1].op(), ComparisonOp::kGreaterEqual);
  EXPECT_EQ(p.rules()[4].body()[1].op(), ComparisonOp::kEqual);
  EXPECT_EQ(p.rules()[5].body()[1].op(), ComparisonOp::kNotEqual);
  EXPECT_EQ(p.rules()[6].body()[1].op(), ComparisonOp::kEqual);
}

TEST_F(ParserTest, ComparisonBetweenTerms) {
  const Program p = MustParse("a :- b(X, Y), X < Y.");
  const Literal& cmp = p.rules()[0].body()[1];
  EXPECT_TRUE(cmp.lhs().is_variable());
  EXPECT_TRUE(cmp.rhs().is_variable());
}

TEST_F(ParserTest, DisjunctionWithPipeAndSemicolon) {
  EXPECT_EQ(MustParse("a | b :- c.").rules()[0].head().size(), 2u);
  EXPECT_EQ(MustParse("a ; b ; c :- d.").rules()[0].head().size(), 3u);
}

TEST_F(ParserTest, Constraint) {
  const Program p = MustParse(":- a, not b.");
  EXPECT_TRUE(p.rules()[0].is_constraint());
}

TEST_F(ParserTest, FunctionTerms) {
  const Program p = MustParse("at(car1, pos(3, 4)).");
  const Term& t = p.rules()[0].head()[0].args()[1];
  ASSERT_TRUE(t.is_function());
  EXPECT_EQ(t.args().size(), 2u);
}

TEST_F(ParserTest, QuotedStrings) {
  const Program p = MustParse(R"(name(car1, "Fire Truck 7").)");
  const Term& t = p.rules()[0].head()[0].args()[1];
  ASSERT_TRUE(t.is_symbol());
  EXPECT_EQ(symbols_->NameOf(t.symbol()), "\"Fire Truck 7\"");
}

TEST_F(ParserTest, QuotedStringDistinctFromPlainConstant) {
  const Program p = MustParse(R"(p("abc"). q(abc).)");
  EXPECT_NE(p.rules()[0].head()[0].args()[0],
            p.rules()[1].head()[0].args()[0]);
}

TEST_F(ParserTest, AnonymousVariablesAreFresh) {
  const Program p = MustParse("h(X) :- p(X, _), q(_, X).");
  std::vector<SymbolId> vars;
  p.rules()[0].body()[0].CollectVariables(&vars);
  p.rules()[0].body()[1].CollectVariables(&vars);
  // X, _1, _2, X — the two anonymous variables must differ.
  ASSERT_EQ(vars.size(), 4u);
  EXPECT_NE(vars[1], vars[2]);
}

TEST_F(ParserTest, CommentsAreIgnored) {
  const Program p = MustParse(R"(
    % leading comment
    a. % trailing comment
    % b. (commented out)
    c.
  )");
  EXPECT_EQ(p.rules().size(), 2u);
}

TEST_F(ParserTest, InputDirective) {
  const Program p = MustParse("#input p/2, q/1.\nh(X) :- p(X, Y), q(Y).");
  ASSERT_EQ(p.input_predicates().size(), 2u);
  EXPECT_EQ(p.input_predicates()[0].arity, 2u);
  EXPECT_EQ(p.input_predicates()[1].arity, 1u);
}

TEST_F(ParserTest, ShowDirective) {
  const Program p = MustParse("#show h/1.\nh(X) :- p(X).");
  ASSERT_EQ(p.shown_predicates().size(), 1u);
}

TEST_F(ParserTest, VariablesStartUppercaseOrUnderscore) {
  const Program p = MustParse("h(Xx, _y) :- p(Xx, _y).");
  EXPECT_EQ(p.rules()[0].Variables().size(), 2u);
}

TEST_F(ParserTest, MultilineRule) {
  const Program p = MustParse(R"(
    give_notification(X) :-
        traffic_jam(X).
  )");
  EXPECT_EQ(p.rules().size(), 1u);
}

// ------------------------------------------------------------- Errors.

TEST_F(ParserTest, MissingDotFails) {
  const Status status = ParseError("a :- b");
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, UnterminatedStringFails) {
  EXPECT_EQ(ParseError("p(\"oops).").code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, UnknownDirectiveFails) {
  EXPECT_EQ(ParseError("#frobnicate p/1.").code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, DanglingColonFails) {
  EXPECT_EQ(ParseError("a : b.").code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, EmptyRuleFails) {
  EXPECT_EQ(ParseError(".").code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, UnbalancedParenFails) {
  EXPECT_EQ(ParseError("p(a.").code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, BadSignatureFails) {
  EXPECT_EQ(ParseError("#input p.").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseError("#input p/x.").code(), StatusCode::kInvalidArgument);
}

TEST_F(ParserTest, ErrorsReportLineAndColumn) {
  const Status status = ParseError("a.\nb :- ? .");
  EXPECT_NE(status.message().find("2:"), std::string::npos) << status;
}

TEST_F(ParserTest, VariableAsPredicateFails) {
  EXPECT_EQ(ParseError("X :- p.").code(), StatusCode::kInvalidArgument);
}

// ---------------------------------------------------- Helper entrypoints.

TEST_F(ParserTest, ParseGroundAtom) {
  StatusOr<Atom> atom = parser_.ParseGroundAtom("average_speed(newcastle,10)");
  ASSERT_TRUE(atom.ok());
  EXPECT_EQ(atom->ToString(*symbols_), "average_speed(newcastle,10)");
}

TEST_F(ParserTest, ParseGroundAtomRejectsVariables) {
  EXPECT_FALSE(parser_.ParseGroundAtom("p(X)").ok());
}

TEST_F(ParserTest, ParseGroundAtomRejectsTrailing) {
  EXPECT_FALSE(parser_.ParseGroundAtom("p(1) q").ok());
}

TEST_F(ParserTest, ParseTermEntrypoint) {
  StatusOr<Term> term = parser_.ParseTerm("f(g(1), x)");
  ASSERT_TRUE(term.ok());
  EXPECT_TRUE(term->is_function());
  EXPECT_FALSE(parser_.ParseTerm("f(1) trailing").ok());
}

// Whole paper program parses and validates.
TEST_F(ParserTest, PaperListing1Parses) {
  const Program p = MustParse(R"(
    very_slow_speed(X) :- average_speed(X, Y), Y < 20.
    many_cars(X) :- car_number(X, Y), Y > 40.
    traffic_jam(X) :- very_slow_speed(X), many_cars(X),
                      not traffic_light(X).
    car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0),
                   car_location(C, X).
    give_notification(X) :- traffic_jam(X).
    give_notification(X) :- car_fire(X).
    #input average_speed/2, car_number/2, traffic_light/1,
           car_in_smoke/2, car_speed/2, car_location/2.
  )");
  EXPECT_EQ(p.rules().size(), 6u);
  EXPECT_EQ(p.input_predicates().size(), 6u);
  EXPECT_TRUE(p.Validate().ok());
}

}  // namespace
}  // namespace streamasp
