// Well-founded semantics: classification of true/false/undefined atoms,
// totality on stratified programs, and the approximation property
// (WFS-true ⊆ every answer set, WFS-false ∩ every answer set = ∅).

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "solve/solver.h"
#include "solve/well_founded.h"
#include "util/rng.h"

namespace streamasp {
namespace {

class WellFoundedTest : public ::testing::Test {
 protected:
  WellFoundedTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  GroundProgram Ground(const std::string& text, bool simplify = false) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_TRUE(program.ok()) << program.status();
    GroundingOptions options;
    options.simplify = simplify;
    Grounder grounder(options);
    StatusOr<GroundProgram> ground = grounder.Ground(*program);
    EXPECT_TRUE(ground.ok()) << ground.status();
    return std::move(ground).value();
  }

  std::set<std::string> Render(const GroundProgram& ground,
                               const std::vector<GroundAtomId>& atoms) {
    std::set<std::string> out;
    for (GroundAtomId a : atoms) {
      out.insert(ground.atoms().GetAtom(a).ToString(*symbols_));
    }
    return out;
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

TEST_F(WellFoundedTest, StratifiedProgramIsTotal) {
  // d is derivable in principle (through not b) but false in the
  // well-founded model because b is true.
  const GroundProgram ground = Ground(R"(
    a. b :- a.
    d :- not b.
    c :- b, not d.
  )");
  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(ground);
  ASSERT_TRUE(wfm.ok());
  EXPECT_TRUE(wfm->IsTotal());
  EXPECT_EQ(Render(ground, wfm->true_atoms),
            (std::set<std::string>{"a", "b", "c"}));
  EXPECT_EQ(Render(ground, wfm->false_atoms),
            (std::set<std::string>{"d"}));
}

TEST_F(WellFoundedTest, EvenNegationCycleIsUndefined) {
  const GroundProgram ground = Ground("a :- not b. b :- not a.");
  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(ground);
  ASSERT_TRUE(wfm.ok());
  EXPECT_FALSE(wfm->IsTotal());
  EXPECT_EQ(wfm->undefined_atoms.size(), 2u);
  EXPECT_TRUE(wfm->true_atoms.empty());
  EXPECT_TRUE(wfm->false_atoms.empty());
}

TEST_F(WellFoundedTest, OddLoopIsUndefinedNotFalse) {
  const GroundProgram ground = Ground("a :- not a.");
  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(ground);
  ASSERT_TRUE(wfm.ok());
  EXPECT_EQ(wfm->undefined_atoms.size(), 1u);
}

TEST_F(WellFoundedTest, PositiveLoopIsFalse) {
  // The grounder itself eliminates underivable positive loops, so build
  // the ground program by hand to exercise the WFS operator directly:
  //   a :- b.  b :- a.  c :- not a.
  AtomTable atoms;
  SymbolTablePtr symbols = MakeSymbolTable();
  const GroundAtomId a = atoms.Intern(Atom(symbols->Intern("a"), {}));
  const GroundAtomId b = atoms.Intern(Atom(symbols->Intern("b"), {}));
  const GroundAtomId c = atoms.Intern(Atom(symbols->Intern("c"), {}));
  GroundProgram ground(std::move(atoms), {GroundRule{{a}, {b}, {}},
                                          GroundRule{{b}, {a}, {}},
                                          GroundRule{{c}, {}, {a}}});
  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(ground);
  ASSERT_TRUE(wfm.ok());
  EXPECT_TRUE(wfm->IsTotal());
  EXPECT_EQ(wfm->false_atoms, (std::vector<GroundAtomId>{a, b}));
  EXPECT_EQ(wfm->true_atoms, (std::vector<GroundAtomId>{c}));
}

TEST_F(WellFoundedTest, MixedProgramSplitsCorrectly) {
  // fact; even cycle; atom depending on the cycle; false atom behind a
  // true negation.
  const GroundProgram ground = Ground(R"(
    f.
    a :- not b. b :- not a.
    c :- a.
    x :- not f.
  )");
  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(ground);
  ASSERT_TRUE(wfm.ok());
  EXPECT_EQ(Render(ground, wfm->true_atoms),
            (std::set<std::string>{"f"}));
  EXPECT_EQ(Render(ground, wfm->false_atoms),
            (std::set<std::string>{"x"}));
  EXPECT_EQ(Render(ground, wfm->undefined_atoms),
            (std::set<std::string>{"a", "b", "c"}));
}

TEST_F(WellFoundedTest, ConstraintViolationDetected) {
  const GroundProgram ground = Ground("a. :- a.");
  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(ground);
  ASSERT_TRUE(wfm.ok());
  EXPECT_TRUE(wfm->constraint_violated);
}

TEST_F(WellFoundedTest, SatisfiableConstraintNotFlagged) {
  const GroundProgram ground = Ground("a. :- b.");
  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(ground);
  ASSERT_TRUE(wfm.ok());
  EXPECT_FALSE(wfm->constraint_violated);
}

TEST_F(WellFoundedTest, UndefinedConstraintNotFlagged) {
  // The constraint body hinges on an undefined atom: not *definitely*
  // violated.
  const GroundProgram ground = Ground("a :- not b. b :- not a. :- a.");
  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(ground);
  ASSERT_TRUE(wfm.ok());
  EXPECT_FALSE(wfm->constraint_violated);
}

TEST_F(WellFoundedTest, DisjunctionRejected) {
  const GroundProgram ground = Ground("a | b.");
  EXPECT_EQ(ComputeWellFoundedModel(ground).status().code(),
            StatusCode::kInvalidArgument);
}

// Approximation property on random programs: WFS-true atoms appear in
// every answer set, WFS-false atoms in none, and total WFS models ARE the
// unique answer set.
class WfsApproximationTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WfsApproximationTest, BoundsEveryStableModel) {
  Rng rng(GetParam());
  const int num_atoms = 3 + static_cast<int>(rng.NextBounded(5));
  const int num_rules = 2 + static_cast<int>(rng.NextBounded(10));
  std::string text;
  auto atom = [&](int i) { return "a" + std::to_string(i); };
  for (int r = 0; r < num_rules; ++r) {
    if (rng.NextBounded(5) == 0) {
      text += atom(static_cast<int>(rng.NextBounded(num_atoms))) + ".\n";
      continue;
    }
    std::string body;
    const int body_len = 1 + static_cast<int>(rng.NextBounded(3));
    for (int b = 0; b < body_len; ++b) {
      if (b > 0) body += ", ";
      if (rng.NextBounded(3) == 0) body += "not ";
      body += atom(static_cast<int>(rng.NextBounded(num_atoms)));
    }
    text += atom(static_cast<int>(rng.NextBounded(num_atoms))) + " :- " +
            body + ".\n";
  }

  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(text);
  ASSERT_TRUE(program.ok());
  Grounder grounder(GroundingOptions{.simplify = false});
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok());

  StatusOr<WellFoundedModel> wfm = ComputeWellFoundedModel(*ground);
  ASSERT_TRUE(wfm.ok());
  Solver solver;
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  ASSERT_TRUE(models.ok());

  for (const AnswerSet& model : *models) {
    for (GroundAtomId a : wfm->true_atoms) {
      EXPECT_TRUE(model.Contains(a)) << text;
    }
    for (GroundAtomId a : wfm->false_atoms) {
      EXPECT_FALSE(model.Contains(a)) << text;
    }
  }
  if (wfm->IsTotal() && !wfm->constraint_violated) {
    // No constraints are generated above, so a total WFS is THE answer set.
    ASSERT_EQ(models->size(), 1u) << text;
    EXPECT_EQ((*models)[0].atoms, wfm->true_atoms) << text;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPrograms, WfsApproximationTest,
                         ::testing::Range<uint64_t>(0, 30));

}  // namespace
}  // namespace streamasp
