// Grounding reuse threaded through the reasoning layers: the sliding
// query processor's delta emission, ParallelReasoner's per-partition
// incremental grounders, the sync/async pipeline with reuse_grounding,
// and the sharded engine — all differentially checked against the same
// configuration without reuse (byte-identical transcripts).

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "stream/generator.h"
#include "stream/windowing.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/pipeline.h"
#include "streamrule/sharded_pipeline.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class GroundingReuseTest : public ::testing::Test {
 protected:
  GroundingReuseTest() : symbols_(MakeSymbolTable()) {}

  Program MustProgram(TrafficProgramVariant variant) {
    StatusOr<Program> program =
        MakeTrafficProgram(symbols_, variant, /*with_show=*/true);
    EXPECT_TRUE(program.ok()) << program.status();
    return std::move(program).value();
  }

  std::vector<Triple> MakeStream(size_t items, uint64_t seed = 2017) {
    GeneratorOptions options;
    options.seed = seed;
    SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), options);
    return generator.GenerateWindow(items);
  }

  void AppendLine(std::string* transcript, const TripleWindow& window,
                  const ParallelReasonerResult& result) {
    *transcript += "#" + std::to_string(window.sequence) + "[" +
                   std::to_string(window.size()) + "]:";
    for (const GroundAnswer& answer : result.answers) {
      *transcript += " " + AnswerToString(answer, *symbols_);
    }
    *transcript += "\n";
  }

  std::string PipelineTranscript(const Program& program,
                                 PipelineOptions options,
                                 const std::vector<Triple>& stream,
                                 PipelineStats* stats_out = nullptr) {
    std::string transcript;
    int64_t last_sequence = -1;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              EXPECT_GT(static_cast<int64_t>(window.sequence), last_sequence);
              last_sequence = static_cast<int64_t>(window.sequence);
              AppendLine(&transcript, window, result);
            });
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    (*pipeline)->PushBatch(stream);
    (*pipeline)->Flush();
    if (stats_out != nullptr) *stats_out = (*pipeline)->stats();
    return transcript;
  }

  std::string ShardedTranscript(const Program& program,
                                ShardedPipelineOptions options,
                                const std::vector<Triple>& stream,
                                ShardedPipelineStats* stats_out = nullptr) {
    std::string transcript;
    StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
        ShardedPipelineEngine::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              AppendLine(&transcript, window, result);
            });
    EXPECT_TRUE(engine.ok()) << engine.status();
    (*engine)->PushBatch(stream);
    (*engine)->Flush();
    if (stats_out != nullptr) *stats_out = (*engine)->stats();
    return transcript;
  }

  SymbolTablePtr symbols_;
};

TEST_F(GroundingReuseTest, ParallelReasonerSlidingWindowsMatchBatch) {
  for (const TrafficProgramVariant variant :
       {TrafficProgramVariant::kP, TrafficProgramVariant::kPPrime}) {
    const Program program = MustProgram(variant);
    const std::vector<Triple> stream = MakeStream(600);
    for (const size_t slide : {size_t{25}, size_t{50}, size_t{100}}) {
      SCOPED_TRACE("slide " + std::to_string(slide));
      ParallelReasonerOptions reuse_options;
      reuse_options.reasoner.reuse_grounding = true;
      ParallelReasoner incremental(
          &program, PartitioningPlan(1), reuse_options);
      ParallelReasoner batch(&program, PartitioningPlan(1), {});

      std::string incremental_answers;
      std::string batch_answers;
      SlidingCountWindower windower(
          /*size=*/100, slide, [&](const TripleWindow& window) {
            StatusOr<ParallelReasonerResult> a = incremental.Process(window);
            StatusOr<ParallelReasonerResult> b = batch.Process(window);
            ASSERT_TRUE(a.ok()) << a.status();
            ASSERT_TRUE(b.ok()) << b.status();
            AppendLine(&incremental_answers, window, *a);
            AppendLine(&batch_answers, window, *b);
          });
      for (const Triple& t : stream) windower.Push(t);
      windower.Flush();
      EXPECT_FALSE(batch_answers.empty());
      EXPECT_EQ(incremental_answers, batch_answers);
    }
  }
}

TEST_F(GroundingReuseTest, SyncSlidingPipelineMatchesWithAndWithoutReuse) {
  const Program program = MustProgram(TrafficProgramVariant::kPPrime);
  const std::vector<Triple> stream = MakeStream(1200);

  PipelineOptions base;
  base.window_size = 200;
  base.window_slide = 50;
  base.async = false;

  PipelineOptions reuse = base;
  reuse.reuse_grounding = true;

  PipelineStats baseline_stats;
  PipelineStats reuse_stats;
  const std::string want =
      PipelineTranscript(program, base, stream, &baseline_stats);
  const std::string got =
      PipelineTranscript(program, reuse, stream, &reuse_stats);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(want, got);

  // Without reuse no counter moves; with reuse the overlapping windows
  // must actually hit the incremental path.
  EXPECT_EQ(baseline_stats.incremental_windows, 0u);
  EXPECT_EQ(baseline_stats.grounding_fallbacks, 0u);
  EXPECT_GT(reuse_stats.incremental_windows, 0u);
  EXPECT_GT(reuse_stats.grounding_rules_retained, 0u);
  EXPECT_GT(reuse_stats.grounding_rules_new, 0u);
  EXPECT_EQ(reuse_stats.windows, baseline_stats.windows);
}

TEST_F(GroundingReuseTest, AsyncSlidingPipelineMatchesSyncOracle) {
  const Program program = MustProgram(TrafficProgramVariant::kP);
  const std::vector<Triple> stream = MakeStream(900);

  PipelineOptions sync;
  sync.window_size = 150;
  sync.window_slide = 30;
  sync.async = false;
  const std::string want = PipelineTranscript(program, sync, stream);

  // Async with reuse: each worker's grounders see every Nth window, so
  // deltas are larger, but the lossless kBlock policy keeps the delivered
  // transcript byte-identical to the sync oracle.
  PipelineOptions async = sync;
  async.async = true;
  async.max_inflight_windows = 4;
  async.reuse_grounding = true;
  const std::string got = PipelineTranscript(program, async, stream);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(want, got);
}

TEST_F(GroundingReuseTest, ShardedEngineMatchesWithAndWithoutReuse) {
  const Program program = MustProgram(TrafficProgramVariant::kPPrime);
  const std::vector<Triple> stream = MakeStream(800);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ShardedPipelineOptions base;
    base.num_shards = shards;
    base.pipeline.window_size = 200;

    ShardedPipelineOptions reuse = base;
    reuse.pipeline.reuse_grounding = true;

    const std::string want = ShardedTranscript(program, base, stream);
    ShardedPipelineStats reuse_stats;
    const std::string got =
        ShardedTranscript(program, reuse, stream, &reuse_stats);
    EXPECT_FALSE(want.empty());
    EXPECT_EQ(want, got);
    // Tumbling global windows: the cache sees disjoint content and must
    // degrade to (correct) full re-groundings, never corrupt answers.
    EXPECT_GT(reuse_stats.aggregate.grounding_fallbacks, 0u);
  }
}

TEST_F(GroundingReuseTest, ShardedSlidingWindowsKeepGroundingReuseIncremental) {
  // Router delta punctuation: sliding global windows reach the sharded
  // engine, each shard's grounders replay only the routed slice of the
  // global delta, and the merged transcript stays byte-identical to the
  // unsharded sliding oracle.
  const Program program = MustProgram(TrafficProgramVariant::kP);
  const std::vector<Triple> stream = MakeStream(900);

  PipelineOptions sync;
  sync.window_size = 150;
  sync.window_slide = 30;
  const std::string want = PipelineTranscript(program, sync, stream);
  ASSERT_FALSE(want.empty());

  for (const size_t shards : {size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ShardedPipelineOptions options;
    options.num_shards = shards;
    options.pipeline.window_size = 150;
    options.pipeline.window_slide = 30;
    options.pipeline.reuse_grounding = true;
    ShardedPipelineStats stats;
    EXPECT_EQ(ShardedTranscript(program, options, stream, &stats), want);
    EXPECT_GT(stats.delta_punctuations, 0u);
    EXPECT_GT(stats.aggregate.incremental_windows, 0u);
    EXPECT_GT(stats.aggregate.grounding_rules_retained, 0u);
  }
}

TEST_F(GroundingReuseTest, ShardedSlidingValidation) {
  const Program program = MustProgram(TrafficProgramVariant::kP);
  const auto callback = [](TripleWindow&, const ParallelReasonerResult&) {};

  // The remaining unsupported sliding combination: lossy shedding (a
  // shed sub-window would stall the ordered merge; ROADMAP.md).
  ShardedPipelineOptions lossy;
  lossy.pipeline.window_size = 100;
  lossy.pipeline.window_slide = 25;
  lossy.pipeline.backpressure = BackpressurePolicy::kDropOldest;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> shedding =
      ShardedPipelineEngine::Create(&program, lossy, callback);
  EXPECT_FALSE(shedding.ok());

  // Sliding by more than a full window never makes sense.
  ShardedPipelineOptions oversized;
  oversized.pipeline.window_size = 100;
  oversized.pipeline.window_slide = 200;
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(&program, oversized, callback).ok());

  // In-range slides are now a supported configuration.
  ShardedPipelineOptions sliding;
  sliding.pipeline.window_size = 100;
  sliding.pipeline.window_slide = 25;
  EXPECT_TRUE(
      ShardedPipelineEngine::Create(&program, sliding, callback).ok());
}

TEST_F(GroundingReuseTest, SlidingQueryProcessorEmitsDeltas) {
  const std::vector<Triple> stream = MakeStream(400);
  std::vector<TripleWindow> windows;
  StreamQueryProcessor processor(
      /*window_size=*/100, /*slide=*/25,
      [&](TripleWindow window) { windows.push_back(std::move(window)); });
  for (const StreamPredicate& pred : MakeTrafficSchema(*symbols_)) {
    processor.RegisterPredicate(pred.predicate);
  }
  for (const Triple& t : stream) processor.Push(t);
  processor.Flush();
  ASSERT_GE(windows.size(), 2u);
  for (size_t k = 0; k < windows.size(); ++k) {
    EXPECT_TRUE(windows[k].has_delta);
    EXPECT_EQ(windows[k].sequence, k);
    EXPECT_EQ(windows[k].size(), 100u);
  }
  // First window admits everything; later ones slide by 25.
  EXPECT_TRUE(windows[0].expired.empty());
  EXPECT_EQ(windows[0].admitted.size(), 100u);
  EXPECT_EQ(windows[1].expired.size(), 25u);
  EXPECT_EQ(windows[1].admitted.size(), 25u);
}

}  // namespace
}  // namespace streamasp
