#include <atomic>
#include <functional>
#include <future>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"
#include "util/status.h"
#include "util/strings.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace streamasp {
namespace {

// ---------------------------------------------------------------- Status.

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status status = InvalidArgumentError("bad rule");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(status.message(), "bad rule");
  EXPECT_EQ(status.ToString(), "INVALID_ARGUMENT: bad rule");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(InvalidArgumentError("x").code());
  codes.insert(NotFoundError("x").code());
  codes.insert(FailedPreconditionError("x").code());
  codes.insert(OutOfRangeError("x").code());
  codes.insert(ResourceExhaustedError("x").code());
  codes.insert(InternalError("x").code());
  codes.insert(UnimplementedError("x").code());
  EXPECT_EQ(codes.size(), 7u);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
}

TEST(StatusCodeTest, ToStringCoversAllCodes) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotFound), "NOT_FOUND");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "INTERNAL");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kUnimplemented),
               "UNIMPLEMENTED");
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(*result, 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> result(NotFoundError("missing"));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> result(std::string("payload"));
  const std::string moved = std::move(result).value();
  EXPECT_EQ(moved, "payload");
}

namespace status_macros {

Status FailIfNegative(int x) {
  if (x < 0) return OutOfRangeError("negative");
  return OkStatus();
}

Status Caller(int x) {
  STREAMASP_RETURN_IF_ERROR(FailIfNegative(x));
  return OkStatus();
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  STREAMASP_ASSIGN_OR_RETURN(const int half, Half(x));
  STREAMASP_ASSIGN_OR_RETURN(const int quarter, Half(half));
  return quarter;
}

}  // namespace status_macros

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(status_macros::Caller(1).ok());
  EXPECT_EQ(status_macros::Caller(-1).code(), StatusCode::kOutOfRange);
}

TEST(StatusMacrosTest, AssignOrReturnPropagatesAndAssigns) {
  StatusOr<int> ok = status_macros::Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_EQ(status_macros::Quarter(6).status().code(),
            StatusCode::kInvalidArgument);  // 6/2 = 3 is odd.
}

// --------------------------------------------------------------- Strings.

TEST(StringsTest, SplitBasic) {
  const std::vector<std::string> pieces = StrSplit("a,b,c", ',');
  ASSERT_EQ(pieces.size(), 3u);
  EXPECT_EQ(pieces[0], "a");
  EXPECT_EQ(pieces[2], "c");
}

TEST(StringsTest, SplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit(",a,", ',').size(), 3u);
  EXPECT_EQ(StrSplit("", ',').size(), 1u);
}

TEST(StringsTest, JoinRoundTrip) {
  const std::vector<std::string> pieces = {"x", "y", "z"};
  EXPECT_EQ(StrJoin(pieces, "::"), "x::y::z");
  EXPECT_EQ(StrJoin({}, ","), "");
}

TEST(StringsTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  hi \t\n"), "hi");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t "), "");
  EXPECT_EQ(StripWhitespace("inner space"), "inner space");
}

TEST(StringsTest, StartsEndsWith) {
  EXPECT_TRUE(StartsWith("traffic_jam", "traffic"));
  EXPECT_FALSE(StartsWith("traffic", "traffic_jam"));
  EXPECT_TRUE(EndsWith("traffic_jam", "_jam"));
  EXPECT_FALSE(EndsWith("jam", "_jam"));
}

TEST(StringsTest, ParseInt64Valid) {
  int64_t out = 0;
  EXPECT_TRUE(ParseInt64("12345", &out));
  EXPECT_EQ(out, 12345);
  EXPECT_TRUE(ParseInt64("-7", &out));
  EXPECT_EQ(out, -7);
  EXPECT_TRUE(ParseInt64("+9", &out));
  EXPECT_EQ(out, 9);
  EXPECT_TRUE(ParseInt64("9223372036854775807", &out));
  EXPECT_EQ(out, INT64_MAX);
  EXPECT_TRUE(ParseInt64("-9223372036854775808", &out));
  EXPECT_EQ(out, INT64_MIN);
}

TEST(StringsTest, ParseInt64Invalid) {
  int64_t out = 99;
  EXPECT_FALSE(ParseInt64("", &out));
  EXPECT_FALSE(ParseInt64("-", &out));
  EXPECT_FALSE(ParseInt64("12x", &out));
  EXPECT_FALSE(ParseInt64("9223372036854775808", &out));   // Overflow.
  EXPECT_FALSE(ParseInt64("-9223372036854775809", &out));  // Underflow.
  EXPECT_EQ(out, 99) << "failed parses must not clobber the output";
}

// ------------------------------------------------------------------- Rng.

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(5);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    const int64_t v = rng.NextInRange(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

// ----------------------------------------------------------------- Timer.

TEST(TimerTest, MeasuresElapsedTime) {
  WallTimer timer;
  // Burn a little CPU deterministically.
  uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  EXPECT_GT(sink, 0u);
  EXPECT_GE(timer.ElapsedMicros(), 0);
  EXPECT_GE(timer.ElapsedMillis(), 0.0);
}

TEST(TimerTest, RestartResets) {
  WallTimer timer;
  uint64_t sink = 0;
  for (int i = 0; i < 100000; ++i) sink += static_cast<uint64_t>(i);
  EXPECT_GT(sink, 0u);
  const int64_t before = timer.ElapsedMicros();
  timer.Restart();
  EXPECT_LE(timer.ElapsedMicros(), before + 1000000);
}

// ------------------------------------------------------------ ThreadPool.

TEST(ThreadPoolTest, RunsAllTasks) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIdleOnEmptyPoolReturns) {
  ThreadPool pool(2);
  pool.WaitIdle();  // Must not hang.
  SUCCEED();
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1u);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.WaitIdle();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // Destructor joins after running everything.
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, TasksRunConcurrentlyWithManyWorkers) {
  ThreadPool pool(4);
  std::atomic<int> started{0};
  std::atomic<bool> release{false};
  // Two tasks that wait for each other prove at least two workers exist.
  for (int i = 0; i < 2; ++i) {
    pool.Submit([&] {
      started.fetch_add(1);
      while (started.load() < 2 && !release.load()) {
      }
    });
  }
  pool.WaitIdle();
  EXPECT_EQ(started.load(), 2);
}

TEST(ThreadPoolTest, SubmitWithFutureSignalsCompletion) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  std::future<void> future =
      pool.SubmitWithFuture([&counter] { counter.fetch_add(1); });
  future.get();
  EXPECT_EQ(counter.load(), 1);
}

TEST(ThreadPoolTest, SubmitWithFuturePropagatesException) {
  ThreadPool pool(1);
  std::future<void> future =
      pool.SubmitWithFuture([] { throw std::runtime_error("boom"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, SubmitAndWaitAllWaitsForExactlyItsBatch) {
  ThreadPool pool(3);
  // A long-running unrelated task must not extend the batch wait (the
  // WaitIdle footgun this API exists to avoid).
  std::atomic<bool> release{false};
  pool.Submit([&release] {
    while (!release.load()) {
      std::this_thread::yield();
    }
  });

  std::atomic<int> counter{0};
  std::vector<std::function<void()>> batch;
  for (int i = 0; i < 20; ++i) {
    batch.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.SubmitAndWaitAll(std::move(batch));
  EXPECT_EQ(counter.load(), 20);  // Batch done even while the hog runs.
  release.store(true);
  pool.WaitIdle();
}

}  // namespace
}  // namespace streamasp
