// Arithmetic built-ins: parsing precedence, constant folding, grounder
// evaluation, assignment binding, safety via the assignment closure, and
// undefined-arithmetic semantics.

#include <set>
#include <string>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "solve/solver.h"

namespace streamasp {
namespace {

class ArithmeticTest : public ::testing::Test {
 protected:
  ArithmeticTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Term T(const std::string& text) {
    StatusOr<Term> term = parser_.ParseTerm(text);
    EXPECT_TRUE(term.ok()) << term.status();
    return std::move(term).value();
  }

  std::set<std::string> FactsOf(const std::string& program_text) {
    StatusOr<Program> program = parser_.ParseProgram(program_text);
    EXPECT_TRUE(program.ok()) << program.status();
    Grounder grounder;
    StatusOr<GroundProgram> ground = grounder.Ground(*program);
    EXPECT_TRUE(ground.ok()) << ground.status();
    std::set<std::string> facts;
    for (const GroundRule& rule : ground->rules()) {
      if (rule.is_fact()) {
        facts.insert(
            ground->atoms().GetAtom(rule.head[0]).ToString(*symbols_));
      }
    }
    return facts;
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

// ------------------------------------------------------ Parsing/folding.

TEST_F(ArithmeticTest, GroundExpressionsFoldAtParseTime) {
  EXPECT_EQ(T("1 + 2").integer_value(), 3);
  EXPECT_EQ(T("10 - 4").integer_value(), 6);
  EXPECT_EQ(T("6 * 7").integer_value(), 42);
  EXPECT_EQ(T("9 / 2").integer_value(), 4);
  EXPECT_EQ(T("9 \\ 2").integer_value(), 1);
}

TEST_F(ArithmeticTest, PrecedenceMultiplicationBeforeAddition) {
  EXPECT_EQ(T("2 + 3 * 4").integer_value(), 14);
  EXPECT_EQ(T("2 * 3 + 4").integer_value(), 10);
  EXPECT_EQ(T("(2 + 3) * 4").integer_value(), 20);
}

TEST_F(ArithmeticTest, LeftAssociativity) {
  EXPECT_EQ(T("10 - 3 - 2").integer_value(), 5);
  EXPECT_EQ(T("100 / 10 / 2").integer_value(), 5);
}

TEST_F(ArithmeticTest, UnaryMinus) {
  EXPECT_EQ(T("-5").integer_value(), -5);
  EXPECT_EQ(T("--5").integer_value(), 5);
  EXPECT_EQ(T("3 + -2").integer_value(), 1);
  EXPECT_EQ(T("-(2 + 3)").integer_value(), -5);
}

TEST_F(ArithmeticTest, VariableExpressionsStayArithmetic) {
  const Term t = T("X + 1");
  EXPECT_TRUE(t.is_arithmetic());
  EXPECT_FALSE(t.IsGround());
  EXPECT_EQ(t.arith_op(), ArithOp::kAdd);
}

TEST_F(ArithmeticTest, DivisionByZeroDoesNotFold) {
  const Term t = T("1 / 0");
  EXPECT_TRUE(t.is_arithmetic());
  int64_t out = 0;
  EXPECT_FALSE(t.EvaluateArithmetic(&out));
  EXPECT_FALSE(T("1 \\ 0").EvaluateArithmetic(&out));
}

TEST_F(ArithmeticTest, ToStringParenthesizes) {
  EXPECT_EQ(T("X + 1").ToString(*symbols_), "(X+1)");
  EXPECT_EQ(T("X * (Y - 1)").ToString(*symbols_), "(X*(Y-1))");
}

TEST_F(ArithmeticTest, BindableVariablesExcludeArithmeticOnes) {
  SymbolTablePtr symbols = symbols_;
  const Term t = T("f(X, Y + 1)");
  std::vector<SymbolId> all;
  t.CollectVariables(&all);
  EXPECT_EQ(all.size(), 2u);
  std::vector<SymbolId> bindable;
  t.CollectBindableVariables(&bindable);
  ASSERT_EQ(bindable.size(), 1u);
  EXPECT_EQ(symbols->NameOf(bindable[0]), "X");
}

// --------------------------------------------------------- Grounding.

TEST_F(ArithmeticTest, ComparisonWithArithmetic) {
  const auto facts = FactsOf(R"(
    load(a, 40). load(b, 60).
    overloaded(H) :- load(H, L), L * 2 > 100.
  )");
  EXPECT_TRUE(facts.count("overloaded(b)"));
  EXPECT_FALSE(facts.count("overloaded(a)"));
}

TEST_F(ArithmeticTest, AssignmentBindsVariable) {
  const auto facts = FactsOf(R"(
    speed(car1, 30).
    doubled(C, D) :- speed(C, S), D = S * 2.
  )");
  EXPECT_TRUE(facts.count("doubled(car1,60)"));
}

TEST_F(ArithmeticTest, AssignmentChainCascades) {
  const auto facts = FactsOf(R"(
    base(10).
    out(Z) :- base(X), Y = X + 5, Z = Y * 2.
  )");
  EXPECT_TRUE(facts.count("out(30)"));
}

TEST_F(ArithmeticTest, AssignmentWithoutPositiveBody) {
  const auto facts = FactsOf("answer(X) :- X = 6 * 7.");
  EXPECT_TRUE(facts.count("answer(42)"));
}

TEST_F(ArithmeticTest, ReversedAssignmentAlsoBinds) {
  const auto facts = FactsOf(R"(
    base(3).
    out(Y) :- base(X), X + 1 = Y.
  )");
  EXPECT_TRUE(facts.count("out(4)"));
}

TEST_F(ArithmeticTest, ArithmeticInHeadArguments) {
  const auto facts = FactsOf(R"(
    n(4).
    succ(X, X + 1) :- n(X).
  )");
  EXPECT_TRUE(facts.count("succ(4,5)"));
}

TEST_F(ArithmeticTest, ArithmeticInPositiveBodyPatternFiltersMatches) {
  // q(X + 1) can only match when X is already bound by p(X).
  const auto facts = FactsOf(R"(
    p(1). p(2).
    q(2). q(5).
    chained(X) :- p(X), q(X + 1).
  )");
  EXPECT_TRUE(facts.count("chained(1)"));
  EXPECT_FALSE(facts.count("chained(2)"));
}

TEST_F(ArithmeticTest, UndefinedArithmeticSkipsInstance) {
  // Symbolic operand: speed(car, fast) makes S * 2 undefined; the rule
  // silently skips that instance, like Clingo.
  const auto facts = FactsOf(R"(
    speed(car1, fast). speed(car2, 10).
    double(C, S * 2) :- speed(C, S).
  )");
  EXPECT_TRUE(facts.count("double(car2,20)"));
  for (const std::string& fact : facts) {
    EXPECT_EQ(fact.find("car1,("), std::string::npos) << fact;
  }
}

TEST_F(ArithmeticTest, DivisionByZeroInComparisonIsFalse) {
  const auto facts = FactsOf(R"(
    d(0). d(2).
    ok(X) :- d(X), 10 / X > 3.
  )");
  EXPECT_TRUE(facts.count("ok(2)"));
  EXPECT_FALSE(facts.count("ok(0)"));
}

TEST_F(ArithmeticTest, ModuloSplitsEvenOdd) {
  const auto facts = FactsOf(R"(
    n(1). n(2). n(3). n(4).
    even(X) :- n(X), X \ 2 == 0.
    odd(X)  :- n(X), X \ 2 == 1.
  )");
  EXPECT_TRUE(facts.count("even(2)"));
  EXPECT_TRUE(facts.count("even(4)"));
  EXPECT_TRUE(facts.count("odd(1)"));
  EXPECT_TRUE(facts.count("odd(3)"));
  EXPECT_FALSE(facts.count("even(1)"));
}

// ------------------------------------------------------------- Safety.

TEST_F(ArithmeticTest, AssignmentMakesVariableSafe) {
  StatusOr<Program> program = parser_.ParseProgram(
      "out(Y) :- base(X), Y = X + 1.");
  ASSERT_TRUE(program.ok());
  EXPECT_TRUE(program->rules()[0].UnsafeVariables().empty());
  EXPECT_TRUE(program->Validate().ok());
}

TEST_F(ArithmeticTest, VariableOnlyInsideArithmeticIsUnsafe) {
  StatusOr<Program> program = parser_.ParseProgram(
      "out(X) :- q(X + 1).");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules()[0].UnsafeVariables().size(), 1u);
  EXPECT_FALSE(program->Validate().ok());
}

TEST_F(ArithmeticTest, MutuallyDependentAssignmentsAreUnsafe) {
  StatusOr<Program> program = parser_.ParseProgram(
      "out(X) :- X = Y + 1, Y = X - 1.");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->rules()[0].UnsafeVariables().size(), 2u);
}

// ------------------------------------------------ End-to-end solving.

TEST_F(ArithmeticTest, SolverSeesEvaluatedProgram) {
  StatusOr<Program> program = parser_.ParseProgram(R"(
    threshold(50).
    reading(s1, 70). reading(s2, 30).
    alarm(S) :- reading(S, V), threshold(T), V > T.
    quiet :- not any_alarm.
    any_alarm :- alarm(S), reading(S, V), V > 0.
  )");
  ASSERT_TRUE(program.ok());
  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok()) << ground.status();
  Solver solver;
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->size(), 1u);
  std::set<std::string> atoms;
  for (GroundAtomId id : (*models)[0].atoms) {
    atoms.insert(ground->atoms().GetAtom(id).ToString(*symbols_));
  }
  EXPECT_TRUE(atoms.count("alarm(s1)"));
  EXPECT_FALSE(atoms.count("alarm(s2)"));
  EXPECT_FALSE(atoms.count("quiet"));
}

}  // namespace
}  // namespace streamasp
