// Unit tests for the streamrule/accuracy harness: the paper's answer
// accuracy measure plus the graceful-degradation completeness estimators
// the overload path (tombstone shedding) reports through PipelineStats
// and ShardedPipelineStats. These pin the estimator's conventions —
// especially the degenerate empty-window and full-shed cases — so a
// regression here is caught independently of the pipelines that consume
// the numbers.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "streamrule/accuracy.h"
#include "streamrule/answer.h"

namespace streamasp {
namespace {

class AccuracyTest : public ::testing::Test {
 protected:
  AccuracyTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Atom A(const std::string& text) {
    StatusOr<Atom> atom = parser_.ParseGroundAtom(text);
    EXPECT_TRUE(atom.ok()) << atom.status();
    return std::move(atom).value();
  }

  GroundAnswer Ans(std::initializer_list<const char*> atoms) {
    GroundAnswer answer;
    for (const char* text : atoms) answer.push_back(A(text));
    NormalizeAnswer(&answer);
    return answer;
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

// ----------------------------------------------- AnswerAccuracy (§III).

TEST_F(AccuracyTest, IdenticalAnswerScoresExactlyOne) {
  const GroundAnswer ans = Ans({"p(1)", "p(2)", "q(1)"});
  EXPECT_EQ(AnswerAccuracy(ans, {ans}), 1.0);
}

TEST_F(AccuracyTest, PartialRecallAgainstSingleReference) {
  // 2 of the reference's 4 atoms recovered -> 0.5; the PR answer's extra
  // atom does not count against it (the measure is recall, not F1).
  const GroundAnswer pr = Ans({"p(1)", "p(2)", "r(9)"});
  const GroundAnswer ref = Ans({"p(1)", "p(2)", "p(3)", "p(4)"});
  EXPECT_DOUBLE_EQ(AnswerAccuracy(pr, {ref}), 0.5);
}

TEST_F(AccuracyTest, BestReferenceWins) {
  const GroundAnswer pr = Ans({"p(1)", "p(2)"});
  const GroundAnswer poor = Ans({"q(1)", "q(2)", "q(3)", "q(4)"});
  const GroundAnswer good = Ans({"p(1)", "p(2)"});
  EXPECT_EQ(AnswerAccuracy(pr, {poor, good}), 1.0);
  // Order independence: max over references, not first match.
  EXPECT_EQ(AnswerAccuracy(pr, {good, poor}), 1.0);
}

TEST_F(AccuracyTest, EmptyReferenceAnswerIsVacuouslySatisfied) {
  EXPECT_EQ(AnswerAccuracy(Ans({"p(1)"}), {Ans({})}), 1.0);
  EXPECT_EQ(AnswerAccuracy(Ans({}), {Ans({})}), 1.0);
}

TEST_F(AccuracyTest, EmptyReferenceListMatchesOnlyEmptyAnswer) {
  EXPECT_EQ(AnswerAccuracy(Ans({}), {}), 1.0);
  EXPECT_EQ(AnswerAccuracy(Ans({"p(1)"}), {}), 0.0);
}

// ------------------------------------------------------- MeanAccuracy.

TEST_F(AccuracyTest, MeanAveragesOverPrAnswers) {
  const GroundAnswer ref = Ans({"p(1)", "p(2)"});
  const GroundAnswer full = Ans({"p(1)", "p(2)"});
  const GroundAnswer half = Ans({"p(1)"});
  EXPECT_DOUBLE_EQ(MeanAccuracy({full, half}, {ref}), 0.75);
}

TEST_F(AccuracyTest, MeanDegenerateCases) {
  // Nothing produced, nothing expected: perfect.
  EXPECT_EQ(MeanAccuracy({}, {}), 1.0);
  // Nothing produced against a real reference: total loss.
  EXPECT_EQ(MeanAccuracy({}, {Ans({"p(1)"})}), 0.0);
}

// ------------------------------- Exact completeness (items-reasoned /
// ------------------------------- items-admitted, the shedding measure).

TEST_F(AccuracyTest, CompletenessIsExactlyOneWhenNothingShed) {
  // The acceptance criterion: when nothing was shed the ratio is 1.0
  // *exactly* (bit-equal), not merely close — downstream code compares
  // `== 1.0` to distinguish clean windows from degraded ones.
  EXPECT_EQ(CompletenessRatio(0, 0), 1.0);
  EXPECT_EQ(CompletenessRatio(1, 1), 1.0);
  EXPECT_EQ(CompletenessRatio(12345678, 12345678), 1.0);
}

TEST_F(AccuracyTest, CompletenessOfEmptyWindowIsOne) {
  // Empty window: nothing admitted, nothing lost. 0/0 := 1.
  EXPECT_EQ(CompletenessRatio(0, 0), 1.0);
}

TEST_F(AccuracyTest, CompletenessOfFullShedIsZero) {
  // Full shed: every admitted item lost.
  EXPECT_EQ(CompletenessRatio(0, 7), 0.0);
}

TEST_F(AccuracyTest, CompletenessPartialShed) {
  EXPECT_DOUBLE_EQ(CompletenessRatio(3, 4), 0.75);
  EXPECT_DOUBLE_EQ(CompletenessRatio(1, 10), 0.1);
}

TEST_F(AccuracyTest, CompletenessClampsAccountingOverrun) {
  // reasoned > admitted is a caller bug; clamp rather than report > 1.
  EXPECT_EQ(CompletenessRatio(5, 4), 1.0);
}

TEST_F(AccuracyTest, TallyAggregatesItemWeighted) {
  CompletenessTally tally;
  tally.Record(100, 100);  // clean window
  tally.Record(0, 100);    // fully shed window
  tally.Record(50, 100);   // half-shed window
  EXPECT_DOUBLE_EQ(tally.ratio(), 0.5);
  // Item weighting: a big clean window outweighs a small shed one.
  CompletenessTally skewed;
  skewed.Record(900, 900);
  skewed.Record(0, 100);
  EXPECT_DOUBLE_EQ(skewed.ratio(), 0.9);
}

TEST_F(AccuracyTest, TallyOfEmptyStreamIsOne) {
  CompletenessTally tally;
  EXPECT_EQ(tally.ratio(), 1.0);
  tally.Record(0, 0);
  EXPECT_EQ(tally.ratio(), 1.0);
}

TEST_F(AccuracyTest, TallyComposesAcrossShards) {
  // Summing per-shard tallies then ratioing == ratioing the merged
  // stream — the property that lets ShardedPipelineStats aggregate
  // PipelineStats without re-walking windows.
  CompletenessTally shard_a, shard_b, merged;
  shard_a.Record(80, 100);
  shard_b.Record(60, 60);
  merged.Record(shard_a.items_reasoned + shard_b.items_reasoned,
                shard_a.items_admitted + shard_b.items_admitted);
  EXPECT_DOUBLE_EQ(merged.ratio(), 140.0 / 160.0);
}

// --------------------------- Estimated completeness (answer recall of a
// --------------------------- degraded run against a lossless oracle).

TEST_F(AccuracyTest, EstimatedCompletenessFullShedScoresZero) {
  // The degraded run produced nothing; the oracle produced an answer.
  EXPECT_EQ(EstimatedCompleteness({}, {Ans({"alarm(1)"})}), 0.0);
}

TEST_F(AccuracyTest, EstimatedCompletenessEmptyWindowScoresOne) {
  // Neither run produced answers (empty window): vacuously complete.
  EXPECT_EQ(EstimatedCompleteness({}, {}), 1.0);
}

TEST_F(AccuracyTest, EstimatedCompletenessTracksAnswerRecall) {
  const GroundAnswer oracle = Ans({"reach(1)", "reach(2)", "reach(3)",
                                   "reach(4)"});
  const GroundAnswer degraded = Ans({"reach(1)", "reach(2)", "reach(3)"});
  EXPECT_DOUBLE_EQ(EstimatedCompleteness({degraded}, {oracle}), 0.75);
  // Identical outputs despite shedding: estimated completeness is 1 even
  // if exact completeness was < 1 (shed inputs that did not matter).
  EXPECT_EQ(EstimatedCompleteness({oracle}, {oracle}), 1.0);
}

}  // namespace
}  // namespace streamasp
