#include <set>
#include <string>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "depgraph/extended_dependency_graph.h"
#include "depgraph/input_dependency_graph.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class DepGraphTest : public ::testing::Test {
 protected:
  DepGraphTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Program MustParse(const std::string& text) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_TRUE(program.ok()) << program.status();
    return std::move(program).value();
  }

  PredicateSignature Sig(const std::string& name, uint32_t arity) {
    return PredicateSignature{symbols_->Intern(name), arity};
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

// ------------------------------------- Extended dependency graph (Def 1).

TEST_F(DepGraphTest, Ep1ConnectsBodyPredicates) {
  const Program p = MustParse("h :- a, b, c.");
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(p);
  const NodeId a = edg.NodeOf(Sig("a", 0));
  const NodeId b = edg.NodeOf(Sig("b", 0));
  const NodeId c = edg.NodeOf(Sig("c", 0));
  EXPECT_TRUE(edg.ep1().HasEdge(a, b));
  EXPECT_TRUE(edg.ep1().HasEdge(b, c));
  EXPECT_TRUE(edg.ep1().HasEdge(a, c));
  const NodeId h = edg.NodeOf(Sig("h", 0));
  EXPECT_FALSE(edg.ep1().HasEdge(a, h));
}

TEST_F(DepGraphTest, Ep1SelfLoopOnlyForNegativeOccurrences) {
  const Program p = MustParse("h :- a, not b.");
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(p);
  EXPECT_FALSE(edg.ep1().HasSelfLoop(edg.NodeOf(Sig("a", 0))));
  EXPECT_TRUE(edg.ep1().HasSelfLoop(edg.NodeOf(Sig("b", 0))));
}

TEST_F(DepGraphTest, Ep2PointsBodyToHead) {
  const Program p = MustParse("h :- a, not b.");
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(p);
  const NodeId a = edg.NodeOf(Sig("a", 0));
  const NodeId b = edg.NodeOf(Sig("b", 0));
  const NodeId h = edg.NodeOf(Sig("h", 0));
  EXPECT_TRUE(edg.ep2().HasEdge(a, h));
  EXPECT_TRUE(edg.ep2().HasEdge(b, h));  // Negative literals count too.
  EXPECT_FALSE(edg.ep2().HasEdge(h, a));
}

TEST_F(DepGraphTest, ComparisonsContributeNothing) {
  const Program p = MustParse("h(X) :- a(X, Y), Y < 20.");
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(p);
  EXPECT_EQ(edg.nodes().size(), 2u);  // h/1 and a/2 only.
}

TEST_F(DepGraphTest, SignaturesWithDifferentAritiesAreDistinctNodes) {
  const Program p = MustParse("h(X) :- p(X), p(X, X).");
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(p);
  EXPECT_NE(edg.NodeOf(Sig("p", 1)), edg.NodeOf(Sig("p", 2)));
  EXPECT_EQ(edg.nodes().size(), 3u);
}

TEST_F(DepGraphTest, DuplicateEdgesCollapse) {
  const Program p = MustParse("h :- a, b. g :- a, b.");
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(p);
  // EP1 has exactly one a—b edge despite two co-occurrences.
  size_t ab = 0;
  const NodeId a = edg.NodeOf(Sig("a", 0));
  for (const UndirectedGraph::Edge& e : edg.ep1().Neighbors(a)) {
    if (e.to == edg.NodeOf(Sig("b", 0))) ++ab;
  }
  EXPECT_EQ(ab, 1u);
}

// Figure 2 of the paper: the extended dependency graph of Listing 1.
TEST_F(DepGraphTest, PaperFigure2) {
  StatusOr<Program> p =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(p.ok());
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(*p);
  EXPECT_EQ(edg.nodes().size(), 11u);

  const NodeId avg = edg.NodeOf(Sig("average_speed", 2));
  const NodeId vss = edg.NodeOf(Sig("very_slow_speed", 1));
  const NodeId cn = edg.NodeOf(Sig("car_number", 2));
  const NodeId mc = edg.NodeOf(Sig("many_cars", 1));
  const NodeId tl = edg.NodeOf(Sig("traffic_light", 1));
  const NodeId tj = edg.NodeOf(Sig("traffic_jam", 1));
  const NodeId cis = edg.NodeOf(Sig("car_in_smoke", 2));
  const NodeId cs = edg.NodeOf(Sig("car_speed", 2));
  const NodeId cl = edg.NodeOf(Sig("car_location", 2));
  const NodeId cf = edg.NodeOf(Sig("car_fire", 1));
  const NodeId gn = edg.NodeOf(Sig("give_notification", 1));

  // EP2: derivation arrows.
  EXPECT_TRUE(edg.ep2().HasEdge(avg, vss));
  EXPECT_TRUE(edg.ep2().HasEdge(cn, mc));
  EXPECT_TRUE(edg.ep2().HasEdge(vss, tj));
  EXPECT_TRUE(edg.ep2().HasEdge(mc, tj));
  EXPECT_TRUE(edg.ep2().HasEdge(tl, tj));
  EXPECT_TRUE(edg.ep2().HasEdge(cis, cf));
  EXPECT_TRUE(edg.ep2().HasEdge(cs, cf));
  EXPECT_TRUE(edg.ep2().HasEdge(cl, cf));
  EXPECT_TRUE(edg.ep2().HasEdge(tj, gn));
  EXPECT_TRUE(edg.ep2().HasEdge(cf, gn));

  // EP1: body co-occurrence (r3 and r4 triangles).
  EXPECT_TRUE(edg.ep1().HasEdge(vss, mc));
  EXPECT_TRUE(edg.ep1().HasEdge(vss, tl));
  EXPECT_TRUE(edg.ep1().HasEdge(mc, tl));
  EXPECT_TRUE(edg.ep1().HasEdge(cis, cs));
  EXPECT_TRUE(edg.ep1().HasEdge(cis, cl));
  EXPECT_TRUE(edg.ep1().HasEdge(cs, cl));
  EXPECT_TRUE(edg.ep1().HasSelfLoop(tl));  // not traffic_light in r3.

  // Nothing connects the two rule families in EP1.
  EXPECT_FALSE(edg.ep1().HasEdge(vss, cis));
  EXPECT_FALSE(edg.ep1().HasEdge(mc, cf));
}

TEST_F(DepGraphTest, ToDotMentionsAllNodes) {
  const Program p = MustParse("h :- a, not b.");
  const ExtendedDependencyGraph edg = ExtendedDependencyGraph::Build(p);
  const std::string dot = edg.ToDot(*symbols_);
  EXPECT_NE(dot.find("label=\"h\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
}

// ---------------------------------------- Input dependency graph (Def 2).

class InputDepGraphTest : public DepGraphTest {};

TEST_F(InputDepGraphTest, ConditionIDirectBodyCoOccurrence) {
  const Program p = MustParse(R"(
    #input a/0, b/0.
    h :- a, b.
  )");
  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(p);
  ASSERT_TRUE(idg.ok()) << idg.status();
  EXPECT_TRUE(idg->Depends(Sig("a", 0), Sig("b", 0)));
}

TEST_F(InputDepGraphTest, ConditionIiThroughDerivationChains) {
  // a feeds u, b feeds v, u and v co-occur: a depends on b.
  const Program p = MustParse(R"(
    #input a/0, b/0.
    u :- a.
    v :- b.
    h :- u, v.
  )");
  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(p);
  ASSERT_TRUE(idg.ok());
  EXPECT_TRUE(idg->Depends(Sig("a", 0), Sig("b", 0)));
}

TEST_F(InputDepGraphTest, ConditionIiWithAsymmetricPathLengths) {
  // Long chain on one side only.
  const Program p = MustParse(R"(
    #input a/0, b/0.
    u1 :- a.
    u2 :- u1.
    u3 :- u2.
    h :- u3, b.
  )");
  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(p);
  ASSERT_TRUE(idg.ok());
  EXPECT_TRUE(idg->Depends(Sig("a", 0), Sig("b", 0)));
}

TEST_F(InputDepGraphTest, IndependentChainsStayDisconnected) {
  const Program p = MustParse(R"(
    #input a/0, b/0.
    u :- a.
    v :- b.
  )");
  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(p);
  ASSERT_TRUE(idg.ok());
  EXPECT_FALSE(idg->Depends(Sig("a", 0), Sig("b", 0)));
}

TEST_F(InputDepGraphTest, SelfLoopFromOwnNegativeOccurrence) {
  const Program p = MustParse(R"(
    #input a/0, t/0.
    h :- a, not t.
  )");
  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(p);
  ASSERT_TRUE(idg.ok());
  EXPECT_TRUE(idg->Depends(Sig("t", 0), Sig("t", 0)));
  EXPECT_FALSE(idg->Depends(Sig("a", 0), Sig("a", 0)));
}

TEST_F(InputDepGraphTest, ConditionIiiPropagatesSelfLoopsOneStep) {
  // input `a` directly feeds u; u occurs negatively (u has an EP1
  // self-loop) => a gets a self-loop.
  const Program p = MustParse(R"(
    #input a/0, c/0.
    u :- a.
    h :- c, not u.
  )");
  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(p);
  ASSERT_TRUE(idg.ok());
  EXPECT_TRUE(idg->Depends(Sig("a", 0), Sig("a", 0)));
}

TEST_F(InputDepGraphTest, ConditionIiiDirectOnlyByDefault) {
  // a feeds u only through w (no direct EP2 edge a->u): the paper's
  // condition (iii) does not fire, the transitive option does.
  const std::string text = R"(
    #input a/0, c/0.
    w :- a.
    u :- w.
    h :- c, not u.
  )";
  const Program p1 = MustParse(text);
  StatusOr<InputDependencyGraph> strict = InputDependencyGraph::Build(p1);
  ASSERT_TRUE(strict.ok());
  EXPECT_FALSE(strict->Depends(Sig("a", 0), Sig("a", 0)));

  InputDependencyOptions transitive;
  transitive.transitive_self_loop_propagation = true;
  StatusOr<InputDependencyGraph> loose =
      InputDependencyGraph::Build(p1, transitive);
  ASSERT_TRUE(loose.ok());
  EXPECT_TRUE(loose->Depends(Sig("a", 0), Sig("a", 0)));
}

TEST_F(InputDepGraphTest, RejectsEmptyInputSet) {
  const Program p = MustParse("h :- a.");
  EXPECT_EQ(InputDependencyGraph::Build(p).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(InputDepGraphTest, RejectsUnknownInputPredicate) {
  Program p = MustParse("h :- a.");
  p.DeclareInputPredicate(Sig("ghost", 1));
  EXPECT_EQ(InputDependencyGraph::Build(p).status().code(),
            StatusCode::kInvalidArgument);
}

// Figure 3: input dependency graph of P.
TEST_F(InputDepGraphTest, PaperFigure3) {
  StatusOr<Program> p =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(p.ok());
  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(*p);
  ASSERT_TRUE(idg.ok());

  const PredicateSignature avg = Sig("average_speed", 2);
  const PredicateSignature cn = Sig("car_number", 2);
  const PredicateSignature tl = Sig("traffic_light", 1);
  const PredicateSignature cis = Sig("car_in_smoke", 2);
  const PredicateSignature cs = Sig("car_speed", 2);
  const PredicateSignature cl = Sig("car_location", 2);

  // Left triangle.
  EXPECT_TRUE(idg->Depends(avg, cn));
  EXPECT_TRUE(idg->Depends(avg, tl));
  EXPECT_TRUE(idg->Depends(cn, tl));
  // Self-loop on traffic_light.
  EXPECT_TRUE(idg->Depends(tl, tl));
  // Right triangle.
  EXPECT_TRUE(idg->Depends(cis, cs));
  EXPECT_TRUE(idg->Depends(cis, cl));
  EXPECT_TRUE(idg->Depends(cs, cl));
  // No cross edges.
  for (const PredicateSignature& left : {avg, cn, tl}) {
    for (const PredicateSignature& right : {cis, cs, cl}) {
      EXPECT_FALSE(idg->Depends(left, right));
    }
  }
}

// Figure 4: the graph of P' is connected through car_number.
TEST_F(InputDepGraphTest, PaperFigure4) {
  StatusOr<Program> p =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kPPrime, false);
  ASSERT_TRUE(p.ok());
  StatusOr<InputDependencyGraph> idg = InputDependencyGraph::Build(*p);
  ASSERT_TRUE(idg.ok());

  const PredicateSignature cn = Sig("car_number", 2);
  EXPECT_TRUE(idg->Depends(cn, Sig("car_in_smoke", 2)));
  EXPECT_TRUE(idg->Depends(cn, Sig("car_speed", 2)));
  EXPECT_TRUE(idg->Depends(cn, Sig("car_location", 2)));
  // average_speed still has no direct edge to the car-fire side.
  EXPECT_FALSE(idg->Depends(Sig("average_speed", 2), Sig("car_speed", 2)));
}

}  // namespace
}  // namespace streamasp
