// PackedTerm round-trip and invariant properties: every Term kind must
// survive pack → unpack unchanged, packed hashing must agree bit-for-bit
// with deep Term hashing (shard routing depends on it), and packed word
// equality must coincide with deep Term equality (the window eviction
// contract and every join index depend on it).

#include <cstdint>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "asp/packed_term.h"
#include "asp/symbol_table.h"
#include "asp/term.h"

namespace streamasp {
namespace {

class PackedTermTest : public ::testing::Test {
 protected:
  PackedTermTest() : symbols_(MakeSymbolTable()) {}

  SymbolId S(const char* name) { return symbols_->Intern(name); }

  SymbolTablePtr symbols_;
};

void ExpectRoundTrip(const Term& term) {
  const PackedTerm packed(term);
  ASSERT_TRUE(packed.has_value());
  EXPECT_EQ(packed.ToTerm(), term);
  EXPECT_EQ(packed.Hash(), term.Hash())
      << "packed hash must replay Term::Hash bit-for-bit";
  // Re-packing the unpacked term must land on the identical word (the
  // arena interns canonically, so escapes are stable too).
  EXPECT_EQ(PackedTerm(packed.ToTerm()).bits(), packed.bits());
}

TEST_F(PackedTermTest, IntegerRoundTripsAcrossInlineBoundaries) {
  const std::vector<int64_t> values = {
      0,
      1,
      -1,
      42,
      -42,
      PackedTerm::kMaxInlineInt,      // Largest inline.
      PackedTerm::kMinInlineInt,      // Smallest inline.
      PackedTerm::kMaxInlineInt + 1,  // First escape above.
      PackedTerm::kMinInlineInt - 1,  // First escape below.
      std::numeric_limits<int64_t>::max(),
      std::numeric_limits<int64_t>::min(),
  };
  for (const int64_t value : values) {
    SCOPED_TRACE(value);
    const Term term = Term::Integer(value);
    ExpectRoundTrip(term);
    const PackedTerm packed(term);
    EXPECT_TRUE(packed.is_integer());
    EXPECT_EQ(packed.integer_value(), value);
    const bool inline_range = value >= PackedTerm::kMinInlineInt &&
                              value <= PackedTerm::kMaxInlineInt;
    EXPECT_EQ(packed.is_escape(), !inline_range);
  }
}

TEST_F(PackedTermTest, SymbolAndVariableRoundTrip) {
  for (const SymbolId id :
       {SymbolId{0}, SymbolId{1}, S("alpha"), S("beta"),
        // SymbolId is 32-bit and the payload holds 61, so even the
        // largest valid id (just under the kInvalidSymbol sentinel)
        // packs inline.
        static_cast<SymbolId>(kInvalidSymbol - 1)}) {
    SCOPED_TRACE(id);
    ExpectRoundTrip(Term::Symbol(id));
    ExpectRoundTrip(Term::Variable(id));
    EXPECT_TRUE(PackedTerm(Term::Symbol(id)).is_symbol());
    EXPECT_EQ(PackedTerm(Term::Symbol(id)).symbol(), id);
    EXPECT_TRUE(PackedTerm(Term::Variable(id)).is_variable());
    EXPECT_EQ(PackedTerm(Term::Variable(id)).symbol(), id);
    // Same payload, different tag: a constant never equals a variable.
    EXPECT_NE(PackedTerm(Term::Symbol(id)), PackedTerm(Term::Variable(id)));
  }
}

TEST_F(PackedTermTest, CompoundTermsEscapeAndRoundTrip) {
  const Term nested = Term::Function(
      S("f"), {Term::Symbol(S("a")),
               Term::Function(S("g"), {Term::Integer(7),
                                       Term::Variable(S("X"))})});
  ExpectRoundTrip(nested);
  const PackedTerm packed(nested);
  EXPECT_TRUE(packed.is_escape());
  EXPECT_TRUE(packed.is_function());
  EXPECT_FALSE(packed.is_integer());

  // Hash-consing: a deep-equal copy built independently packs to the
  // identical word, and a structurally different term does not.
  const Term copy = Term::Function(
      S("f"), {Term::Symbol(S("a")),
               Term::Function(S("g"), {Term::Integer(7),
                                       Term::Variable(S("X"))})});
  EXPECT_EQ(PackedTerm(copy).bits(), packed.bits());
  const Term other = Term::Function(
      S("f"), {Term::Symbol(S("a")),
               Term::Function(S("g"), {Term::Integer(8),
                                       Term::Variable(S("X"))})});
  EXPECT_NE(PackedTerm(other), packed);
}

TEST_F(PackedTermTest, NoneBehavesLikeEmptyOptional) {
  const PackedTerm none;
  EXPECT_FALSE(none.has_value());
  EXPECT_TRUE(none.is_none());
  EXPECT_EQ(none, PackedTerm(std::nullopt));
  EXPECT_EQ(none.ToOptionalTerm(), std::nullopt);

  const PackedTerm from_empty_optional{std::optional<Term>{}};
  EXPECT_EQ(from_empty_optional, none);
  const PackedTerm from_full_optional{std::optional<Term>{Term::Integer(3)}};
  EXPECT_TRUE(from_full_optional.has_value());
  EXPECT_EQ(from_full_optional.ToOptionalTerm(), Term::Integer(3));
}

// Property sweep: over a deterministic population mixing every kind,
// packed equality and packed hashing must agree with their deep
// counterparts for every pair.
TEST_F(PackedTermTest, EqualityAndHashAgreeWithDeepTermsPairwise) {
  std::vector<Term> population;
  uint64_t state = 99;
  auto next = [&state]() {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    return state >> 16;
  };
  const SymbolId f = S("f");
  for (int i = 0; i < 64; ++i) {
    switch (next() % 4) {
      case 0:
        population.push_back(Term::Integer(static_cast<int64_t>(next() % 7) -
                                           3));
        break;
      case 1:
        population.push_back(
            Term::Symbol(static_cast<SymbolId>(next() % 5)));
        break;
      case 2:
        population.push_back(
            Term::Variable(static_cast<SymbolId>(next() % 5)));
        break;
      default:
        population.push_back(Term::Function(
            f, {Term::Integer(static_cast<int64_t>(next() % 3))}));
        break;
    }
  }
  for (const Term& a : population) {
    const PackedTerm pa(a);
    EXPECT_EQ(pa.Hash(), a.Hash());
    for (const Term& b : population) {
      const PackedTerm pb(b);
      EXPECT_EQ(pa == pb, a == b)
          << "packed word equality must be deep Term equality";
    }
  }
}

}  // namespace
}  // namespace streamasp
