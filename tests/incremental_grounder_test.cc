// Differential correctness of the IncrementalGrounder: for every window
// of a sliding fact stream, the incrementally maintained ground program
// must have exactly the stable models of a fresh Grounder::Ground over the
// same facts — across slide sizes (1 .. window), program shapes
// (stratified joins, negation, recursion, constraints, multi-model
// choice), duplicate facts, empty windows and sequence gaps.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "ground/incremental_grounder.h"
#include "solve/solver.h"

namespace streamasp {
namespace {

using CanonicalModels = std::multiset<std::vector<std::string>>;

CanonicalModels SolveCanonical(const GroundProgram& ground,
                               const SymbolTable& symbols) {
  const Solver solver;
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(ground);
  EXPECT_TRUE(models.ok()) << models.status();
  CanonicalModels canonical;
  if (!models.ok()) return canonical;
  for (const AnswerSet& model : *models) {
    std::vector<std::string> atoms;
    atoms.reserve(model.atoms.size());
    for (GroundAtomId id : model.atoms) {
      atoms.push_back(ground.atoms().GetAtom(id).ToString(symbols));
    }
    std::sort(atoms.begin(), atoms.end());
    canonical.insert(std::move(atoms));
  }
  return canonical;
}

class IncrementalGrounderTest : public ::testing::Test {
 protected:
  IncrementalGrounderTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Program MustParse(const std::string& text) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_TRUE(program.ok()) << program.status();
    return std::move(program).value();
  }

  Atom MakeAtom(const std::string& pred, std::vector<Term> args) {
    return Atom(symbols_->Intern(pred), std::move(args));
  }

  /// Slides a [window, slide] view over `stream` and checks, per window,
  /// that the incremental grounding is answer-equivalent to a fresh one.
  /// Returns the incremental grounder's cumulative stats.
  GroundingStats RunDifferential(
      const Program& program, const std::vector<Atom>& stream, size_t window,
      size_t slide, IncrementalGroundingOptions inc_options = {}) {
    IncrementalGrounder incremental(&program, GroundingOptions{},
                                    inc_options);
    const Grounder fresh;
    uint64_t sequence = 0;
    for (size_t begin = 0; begin + window <= stream.size();
         begin += slide, ++sequence) {
      const std::vector<Atom> facts(stream.begin() + begin,
                                    stream.begin() + begin + window);
      CheckWindow(program, incremental, fresh, sequence, facts, nullptr);
    }
    return incremental.cumulative_stats();
  }

  void CheckWindow(const Program& program, IncrementalGrounder& incremental,
                   const Grounder& fresh, uint64_t sequence,
                   const std::vector<Atom>& facts,
                   const IncrementalGrounder::FactDelta* hint) {
    StatusOr<GroundProgram> reference = fresh.Ground(program, facts);
    ASSERT_TRUE(reference.ok()) << reference.status();
    StatusOr<const GroundProgram*> cached =
        incremental.GroundWindow(sequence, facts, hint);
    ASSERT_TRUE(cached.ok()) << cached.status();
    const CanonicalModels want = SolveCanonical(*reference, *symbols_);
    const CanonicalModels got = SolveCanonical(**cached, *symbols_);
    EXPECT_EQ(want, got) << "window " << sequence << " (" << facts.size()
                         << " facts) diverged";
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

constexpr char kJoinNegationProgram[] = R"(
  alert(X) :- high(X), not suppressed(X).
  suppressed(X) :- maint(X).
  pair(X, Y) :- high(X), high(Y), X < Y.
)";

constexpr char kRecursiveProgram[] = R"(
  path(X, Y) :- edge(X, Y).
  path(X, Z) :- path(X, Y), edge(Y, Z).
  cyclic(X) :- path(X, X).
)";

constexpr char kChoiceProgram[] = R"(
  a(X) :- in(X), not b(X).
  b(X) :- in(X), not a(X).
  picked(X) :- a(X).
)";

constexpr char kConstraintProgram[] = R"(
  warm(X) :- hot(X).
  :- warm(X), cold(X).
)";

TEST_F(IncrementalGrounderTest, JoinNegationAcrossSlideSizes) {
  const Program program = MustParse(kJoinNegationProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 24; ++i) {
    stream.push_back(MakeAtom(i % 3 == 0 ? "maint" : "high",
                              {Term::Integer(i % 7)}));
  }
  for (const size_t slide : {size_t{1}, size_t{2}, size_t{5}, size_t{8}}) {
    SCOPED_TRACE("slide " + std::to_string(slide));
    RunDifferential(program, stream, /*window=*/8, slide);
  }
}

TEST_F(IncrementalGrounderTest, RecursionAcrossSlideSizes) {
  const Program program = MustParse(kRecursiveProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 30; ++i) {
    // Chains with occasional back-edges so paths appear and expire.
    stream.push_back(MakeAtom(
        "edge", {Term::Integer(i % 6), Term::Integer((i + (i % 3) + 1) % 6)}));
  }
  for (const size_t slide :
       {size_t{1}, size_t{3}, size_t{7}, size_t{10}}) {
    SCOPED_TRACE("slide " + std::to_string(slide));
    RunDifferential(program, stream, /*window=*/10, slide);
  }
}

TEST_F(IncrementalGrounderTest, RecursiveRuleRepeatingItsHeadPredicate) {
  // Regression: a rule whose body repeats the head predicate extends the
  // predicate's lazy join index mid-iteration (formerly a use-after-free
  // in both engines' MatchFrom); also exercises delta replay over it.
  const Program program = MustParse("r(a, Z) :- r(a, Y), r(Y, Z).");
  const SymbolId a = symbols_->Intern("a");
  std::vector<Atom> stream;
  for (int i = 1; i <= 24; ++i) {
    stream.push_back(MakeAtom("r", {Term::Symbol(a), Term::Integer(i)}));
    stream.push_back(
        MakeAtom("r", {Term::Integer(i), Term::Integer(100 + i)}));
  }
  for (const size_t slide : {size_t{2}, size_t{6}}) {
    SCOPED_TRACE("slide " + std::to_string(slide));
    RunDifferential(program, stream, /*window=*/16, slide);
  }
}

TEST_F(IncrementalGrounderTest, MultiModelChoicePrograms) {
  const Program program = MustParse(kChoiceProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 18; ++i) {
    stream.push_back(MakeAtom("in", {Term::Integer(i % 5)}));
  }
  for (const size_t slide : {size_t{1}, size_t{2}, size_t{6}}) {
    SCOPED_TRACE("slide " + std::to_string(slide));
    RunDifferential(program, stream, /*window=*/6, slide);
  }
}

TEST_F(IncrementalGrounderTest, ConstraintsCanEmptyTheModels) {
  const Program program = MustParse(kConstraintProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 20; ++i) {
    stream.push_back(
        MakeAtom(i % 4 == 3 ? "cold" : "hot", {Term::Integer(i % 5)}));
  }
  for (const size_t slide : {size_t{1}, size_t{2}, size_t{7}}) {
    SCOPED_TRACE("slide " + std::to_string(slide));
    RunDifferential(program, stream, /*window=*/7, slide);
  }
}

TEST_F(IncrementalGrounderTest, DuplicateFactsAcrossWindows) {
  const Program program = MustParse(kJoinNegationProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 20; ++i) {
    // Heavy duplication: only three distinct atoms circulate.
    stream.push_back(MakeAtom("high", {Term::Integer(i % 3)}));
  }
  RunDifferential(program, stream, /*window=*/6, /*slide=*/2);
}

TEST_F(IncrementalGrounderTest, EmptyWindowsAndRefill) {
  const Program program = MustParse(kJoinNegationProgram);
  IncrementalGrounder incremental(&program);
  const Grounder fresh;
  const std::vector<Atom> some = {MakeAtom("high", {Term::Integer(1)}),
                                  MakeAtom("high", {Term::Integer(2)})};
  CheckWindow(program, incremental, fresh, 0, some, nullptr);
  CheckWindow(program, incremental, fresh, 1, {}, nullptr);
  CheckWindow(program, incremental, fresh, 2, some, nullptr);
}

TEST_F(IncrementalGrounderTest, SequenceGapsStayCorrect) {
  // An async worker sees every Nth window: deltas are large and sequences
  // jump; the snapshot diff must keep every window correct regardless.
  const Program program = MustParse(kRecursiveProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 40; ++i) {
    stream.push_back(
        MakeAtom("edge", {Term::Integer(i % 8), Term::Integer((i + 1) % 8)}));
  }
  IncrementalGrounder incremental(&program);
  const Grounder fresh;
  for (size_t begin = 0, seq = 0; begin + 10 <= stream.size();
       begin += 9, seq += 3) {
    const std::vector<Atom> facts(stream.begin() + begin,
                                  stream.begin() + begin + 10);
    CheckWindow(program, incremental, fresh, seq, facts, nullptr);
  }
}

TEST_F(IncrementalGrounderTest, DeltaHintMatchesSnapshotDiff) {
  const Program program = MustParse(kJoinNegationProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 20; ++i) {
    stream.push_back(MakeAtom(i % 4 == 0 ? "maint" : "high",
                              {Term::Integer(i % 6)}));
  }
  const size_t window = 8, slide = 2;
  IncrementalGrounder with_hint(&program);
  IncrementalGrounder without_hint(&program);
  const Grounder fresh;
  uint64_t sequence = 0;
  for (size_t begin = 0; begin + window <= stream.size();
       begin += slide, ++sequence) {
    const std::vector<Atom> facts(stream.begin() + begin,
                                  stream.begin() + begin + window);
    IncrementalGrounder::FactDelta hint;
    const IncrementalGrounder::FactDelta* hint_ptr = nullptr;
    if (sequence > 0) {
      hint.previous_sequence = sequence - 1;
      hint.expired.assign(stream.begin() + (begin - slide),
                          stream.begin() + begin);
      hint.admitted.assign(stream.begin() + (begin - slide) + window,
                           stream.begin() + begin + window);
      hint_ptr = &hint;
    }
    CheckWindow(program, with_hint, fresh, sequence, facts, hint_ptr);
    CheckWindow(program, without_hint, fresh, sequence, facts, nullptr);
  }
  // The hint path must not change what got reused.
  EXPECT_EQ(with_hint.cumulative_stats().incremental_windows,
            without_hint.cumulative_stats().incremental_windows);
  EXPECT_GT(with_hint.cumulative_stats().incremental_windows, 0u);
}

TEST_F(IncrementalGrounderTest, InconsistentHintFallsBackToSnapshotDiff) {
  const Program program = MustParse(kJoinNegationProgram);
  IncrementalGrounder incremental(&program);
  const Grounder fresh;
  const std::vector<Atom> w0 = {MakeAtom("high", {Term::Integer(1)}),
                                MakeAtom("high", {Term::Integer(2)}),
                                MakeAtom("high", {Term::Integer(3)})};
  std::vector<Atom> w1 = w0;
  w1.push_back(MakeAtom("maint", {Term::Integer(1)}));
  CheckWindow(program, incremental, fresh, 0, w0, nullptr);
  // A hint that lies about the delta (claims nothing changed): totals
  // disagree with the facts vector, so it must be ignored, not believed.
  IncrementalGrounder::FactDelta bogus;
  bogus.previous_sequence = 0;
  CheckWindow(program, incremental, fresh, 1, w1, &bogus);
}

TEST_F(IncrementalGrounderTest, TumblingWindowsAlwaysFallBack) {
  const Program program = MustParse(kJoinNegationProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 24; ++i) {
    stream.push_back(MakeAtom("high", {Term::Integer(i)}));
  }
  // slide == window: disjoint content, the delta is ~2x the window, and
  // every window must take the full-reground path.
  const GroundingStats stats =
      RunDifferential(program, stream, /*window=*/6, /*slide=*/6);
  EXPECT_EQ(stats.incremental_windows, 0u);
  EXPECT_EQ(stats.incremental_fallbacks, 4u);
}

TEST_F(IncrementalGrounderTest, HighOverlapReusesAndRetracts) {
  const Program program = MustParse(kJoinNegationProgram);
  std::vector<Atom> stream;
  for (int i = 0; i < 40; ++i) {
    stream.push_back(MakeAtom(i % 5 == 0 ? "maint" : "high",
                              {Term::Integer(i % 9)}));
  }
  const GroundingStats stats =
      RunDifferential(program, stream, /*window=*/16, /*slide=*/2);
  // First window always regrounds; occasional compaction rebuilds are
  // allowed, but the overwhelming majority of windows must reuse.
  EXPECT_GE(stats.incremental_fallbacks, 1u);
  EXPECT_LE(stats.incremental_fallbacks, 3u);
  EXPECT_GE(stats.incremental_windows, 10u);
  EXPECT_GT(stats.rules_retained, 0u);
  EXPECT_GT(stats.rules_retracted, 0u);
  EXPECT_GT(stats.rules_new, 0u);
}

TEST_F(IncrementalGrounderTest, InvalidateDropsTheCache) {
  const Program program = MustParse(kJoinNegationProgram);
  IncrementalGrounder incremental(&program);
  const Grounder fresh;
  const std::vector<Atom> w = {MakeAtom("high", {Term::Integer(1)})};
  CheckWindow(program, incremental, fresh, 0, w, nullptr);
  EXPECT_TRUE(incremental.cache_valid());
  incremental.Invalidate();
  EXPECT_FALSE(incremental.cache_valid());
  CheckWindow(program, incremental, fresh, 1, w, nullptr);
  EXPECT_EQ(incremental.cumulative_stats().incremental_fallbacks, 2u);
}

}  // namespace
}  // namespace streamasp
