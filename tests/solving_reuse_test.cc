// Solving reuse threaded through the reasoning layers: ParallelReasoner's
// per-partition persistent solvers, the sync/async pipelines with
// reuse_solving, and the sharded engine — all differentially checked
// against the same configuration without reuse (byte-identical
// transcripts), across slide sizes, programs P/P', shard counts, and with
// reuse_grounding both explicitly on and implied.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "asp/parser.h"
#include "stream/generator.h"
#include "stream/windowing.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/pipeline.h"
#include "streamrule/sharded_pipeline.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class SolvingReuseTest : public ::testing::Test {
 protected:
  SolvingReuseTest() : symbols_(MakeSymbolTable()) {}

  Program MustProgram(TrafficProgramVariant variant) {
    StatusOr<Program> program =
        MakeTrafficProgram(symbols_, variant, /*with_show=*/true);
    EXPECT_TRUE(program.ok()) << program.status();
    return std::move(program).value();
  }

  std::vector<Triple> MakeStream(size_t items, uint64_t seed = 2017) {
    GeneratorOptions options;
    options.seed = seed;
    SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), options);
    return generator.GenerateWindow(items);
  }

  void AppendLine(std::string* transcript, const TripleWindow& window,
                  const ParallelReasonerResult& result) {
    *transcript += "#" + std::to_string(window.sequence) + "[" +
                   std::to_string(window.size()) + "]:";
    for (const GroundAnswer& answer : result.answers) {
      *transcript += " " + AnswerToString(answer, *symbols_);
    }
    *transcript += "\n";
  }

  std::string PipelineTranscript(const Program& program,
                                 PipelineOptions options,
                                 const std::vector<Triple>& stream,
                                 PipelineStats* stats_out = nullptr) {
    std::string transcript;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              AppendLine(&transcript, window, result);
            });
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    (*pipeline)->PushBatch(stream);
    (*pipeline)->Flush();
    if (stats_out != nullptr) *stats_out = (*pipeline)->stats();
    return transcript;
  }

  std::string ShardedTranscript(const Program& program,
                                ShardedPipelineOptions options,
                                const std::vector<Triple>& stream,
                                ShardedPipelineStats* stats_out = nullptr) {
    std::string transcript;
    StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
        ShardedPipelineEngine::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              AppendLine(&transcript, window, result);
            });
    EXPECT_TRUE(engine.ok()) << engine.status();
    (*engine)->PushBatch(stream);
    (*engine)->Flush();
    if (stats_out != nullptr) *stats_out = (*engine)->stats();
    return transcript;
  }

  SymbolTablePtr symbols_;
};

TEST_F(SolvingReuseTest, ParallelReasonerSlidingWindowsMatchBatch) {
  for (const TrafficProgramVariant variant :
       {TrafficProgramVariant::kP, TrafficProgramVariant::kPPrime}) {
    const Program program = MustProgram(variant);
    const std::vector<Triple> stream = MakeStream(600);
    for (const size_t slide : {size_t{25}, size_t{50}, size_t{100}}) {
      for (const bool explicit_grounding : {false, true}) {
        SCOPED_TRACE("slide " + std::to_string(slide) +
                     (explicit_grounding ? " +reuse_grounding" : ""));
        // reuse_solving alone must imply grounding reuse; setting both
        // must behave identically.
        ParallelReasonerOptions warm_options;
        warm_options.reasoner.solving.reuse_solving = true;
        warm_options.reasoner.reuse_grounding = explicit_grounding;
        ParallelReasoner warm(&program, PartitioningPlan(1), warm_options);
        ParallelReasoner batch(&program, PartitioningPlan(1), {});

        std::string warm_answers;
        std::string batch_answers;
        SlidingCountWindower windower(
            /*size=*/100, slide, [&](const TripleWindow& window) {
              StatusOr<ParallelReasonerResult> a = warm.Process(window);
              StatusOr<ParallelReasonerResult> b = batch.Process(window);
              ASSERT_TRUE(a.ok()) << a.status();
              ASSERT_TRUE(b.ok()) << b.status();
              AppendLine(&warm_answers, window, *a);
              AppendLine(&batch_answers, window, *b);
            });
        for (const Triple& t : stream) windower.Push(t);
        windower.Flush();
        EXPECT_FALSE(batch_answers.empty());
        EXPECT_EQ(warm_answers, batch_answers);
      }
    }
  }
}

TEST_F(SolvingReuseTest, SyncSlidingPipelineMatchesWithAndWithoutReuse) {
  const Program program = MustProgram(TrafficProgramVariant::kPPrime);
  const std::vector<Triple> stream = MakeStream(1200);

  PipelineOptions base;
  base.window_size = 200;
  base.window_slide = 50;
  base.async = false;

  PipelineOptions ground_only = base;
  ground_only.reuse_grounding = true;

  PipelineOptions warm = base;
  warm.reuse_grounding = true;
  warm.reuse_solving = true;

  PipelineStats baseline_stats;
  PipelineStats ground_stats;
  PipelineStats warm_stats;
  const std::string want =
      PipelineTranscript(program, base, stream, &baseline_stats);
  const std::string ground_got =
      PipelineTranscript(program, ground_only, stream, &ground_stats);
  const std::string warm_got =
      PipelineTranscript(program, warm, stream, &warm_stats);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(want, ground_got);
  EXPECT_EQ(want, warm_got);

  // Solver counters move only on the reuse_solving run, and the
  // overlapping windows must actually hit the patch path.
  EXPECT_EQ(baseline_stats.incremental_solve_windows, 0u);
  EXPECT_EQ(ground_stats.incremental_solve_windows, 0u);
  EXPECT_EQ(ground_stats.warm_start_hits, 0u);
  EXPECT_GT(warm_stats.incremental_solve_windows, 0u);
  EXPECT_GT(warm_stats.solver_rules_retained, 0u);
  EXPECT_GT(warm_stats.solver_rules_new, 0u);
  EXPECT_GT(warm_stats.warm_start_hits, 0u);
  EXPECT_EQ(warm_stats.windows, baseline_stats.windows);
}

TEST_F(SolvingReuseTest, AsyncSlidingPipelineMatchesSyncOracle) {
  const Program program = MustProgram(TrafficProgramVariant::kP);
  const std::vector<Triple> stream = MakeStream(900);

  PipelineOptions sync;
  sync.window_size = 150;
  sync.window_slide = 30;
  sync.async = false;
  const std::string want = PipelineTranscript(program, sync, stream);

  PipelineOptions async = sync;
  async.async = true;
  async.max_inflight_windows = 4;
  async.reuse_grounding = true;
  async.reuse_solving = true;
  const std::string got = PipelineTranscript(program, async, stream);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(want, got);
}

TEST_F(SolvingReuseTest, ShardedEngineMatchesWithAndWithoutReuse) {
  const Program program = MustProgram(TrafficProgramVariant::kPPrime);
  const std::vector<Triple> stream = MakeStream(800);
  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ShardedPipelineOptions base;
    base.num_shards = shards;
    base.pipeline.window_size = 200;

    ShardedPipelineOptions warm = base;
    warm.pipeline.reuse_grounding = true;
    warm.pipeline.reuse_solving = true;

    const std::string want = ShardedTranscript(program, base, stream);
    ShardedPipelineStats warm_stats;
    const std::string got =
        ShardedTranscript(program, warm, stream, &warm_stats);
    EXPECT_FALSE(want.empty());
    EXPECT_EQ(want, got);
    // Tumbling global windows: the grounder cache falls back and the
    // paired solver re-ingests — correct, never corrupting answers.
    EXPECT_GT(warm_stats.aggregate.solve_rebuilds, 0u);
  }
}

TEST_F(SolvingReuseTest, ShardedSlidingEngineKeepsPersistentSolversWarm) {
  // The sharded sliding path: router delta punctuation hands every shard
  // its routed slice of the global delta, so the per-partition persistent
  // solvers patch across overlapping global windows instead of
  // re-ingesting — byte-identical to the same sharded configuration
  // without reuse AND to the unsharded sliding sync oracle.
  const Program program = MustProgram(TrafficProgramVariant::kPPrime);
  const std::vector<Triple> stream = MakeStream(1000, /*seed=*/19);

  PipelineOptions sync;
  sync.window_size = 200;
  sync.window_slide = 40;
  const std::string oracle = PipelineTranscript(program, sync, stream);
  ASSERT_FALSE(oracle.empty());

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ShardedPipelineOptions base;
    base.num_shards = shards;
    base.pipeline.window_size = 200;
    base.pipeline.window_slide = 40;

    ShardedPipelineOptions warm = base;
    warm.pipeline.reuse_solving = true;  // Implies reuse_grounding.

    EXPECT_EQ(ShardedTranscript(program, base, stream), oracle);
    ShardedPipelineStats warm_stats;
    EXPECT_EQ(ShardedTranscript(program, warm, stream, &warm_stats), oracle);
    EXPECT_GT(warm_stats.delta_punctuations, 0u);
    EXPECT_GT(warm_stats.aggregate.incremental_solve_windows, 0u);
    EXPECT_GT(warm_stats.aggregate.solver_rules_retained, 0u);
    EXPECT_GT(warm_stats.aggregate.warm_start_hits, 0u);
  }
}

TEST_F(SolvingReuseTest, MaintainedFixpointColumnMatchesPatchedRebuild) {
  // The maintained-fixpoint column of the differential matrix: for every
  // slide size and both traffic programs, the reuse_solving pipeline with
  // delta-sized model maintenance (the default) and with it disabled
  // (PR 4's patched-rebuild behavior) must both produce the no-reuse
  // baseline transcript byte for byte. The traffic programs are
  // non-definite, so maintenance must also know to stay out of the way.
  for (const TrafficProgramVariant variant :
       {TrafficProgramVariant::kP, TrafficProgramVariant::kPPrime}) {
    const Program program = MustProgram(variant);
    const std::vector<Triple> stream = MakeStream(1200);
    for (const size_t slide : {size_t{25}, size_t{50}, size_t{100}}) {
      SCOPED_TRACE("slide " + std::to_string(slide));
      PipelineOptions base;
      base.window_size = 200;
      base.window_slide = slide;

      PipelineOptions maintained = base;
      maintained.reuse_solving = true;
      maintained.reasoner.reasoner.solving.maintain_fixpoint = true;

      PipelineOptions patched = base;
      patched.reuse_solving = true;
      patched.reasoner.reasoner.solving.maintain_fixpoint = false;

      const std::string want = PipelineTranscript(program, base, stream);
      EXPECT_FALSE(want.empty());
      EXPECT_EQ(PipelineTranscript(program, maintained, stream), want);
      EXPECT_EQ(PipelineTranscript(program, patched, stream), want);
    }
  }
}

TEST_F(SolvingReuseTest, ShardedMaintainedFixpointColumnMatchesOracle) {
  // Same column across shard counts: maintained and patched-rebuild
  // configurations must both reproduce the unsharded sliding sync oracle.
  const Program program = MustProgram(TrafficProgramVariant::kPPrime);
  const std::vector<Triple> stream = MakeStream(1000, /*seed=*/19);

  PipelineOptions sync;
  sync.window_size = 200;
  sync.window_slide = 40;
  const std::string oracle = PipelineTranscript(program, sync, stream);
  ASSERT_FALSE(oracle.empty());

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards " + std::to_string(shards));
    ShardedPipelineOptions maintained;
    maintained.num_shards = shards;
    maintained.pipeline.window_size = 200;
    maintained.pipeline.window_slide = 40;
    maintained.pipeline.reuse_solving = true;

    ShardedPipelineOptions patched = maintained;
    patched.pipeline.reasoner.reasoner.solving.maintain_fixpoint = false;

    EXPECT_EQ(ShardedTranscript(program, maintained, stream), oracle);
    EXPECT_EQ(ShardedTranscript(program, patched, stream), oracle);
  }
}

TEST_F(SolvingReuseTest, DefiniteSlidingPipelineMaintainsRootFixpoint) {
  // A definite recursive workload (the maintained path's home turf):
  // sliding reachability. The maintained run must match the no-reuse
  // baseline transcript, actually ride the maintained fixpoint
  // (fixpoint_maintained_windows), and carry most of the model across
  // windows untouched (assignments_reused); with maintenance off the
  // counter must stay zero while the transcript still matches.
  Parser parser(symbols_);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input link/2.
    reach(X, Y) :- link(X, Y).
    reach(X, Z) :- reach(X, Y), link(Y, Z).
    #show reach/2.
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  GeneratorOptions gen;
  gen.seed = 2017;
  gen.value_range = 24;
  gen.location_divisor = 8;
  std::vector<StreamPredicate> schema(1);
  schema[0].predicate = symbols_->Intern("link");
  schema[0].has_object = true;
  SyntheticStreamGenerator generator(schema, gen);
  const std::vector<Triple> stream = generator.GenerateWindow(600);

  PipelineOptions base;
  base.window_size = 120;
  base.window_slide = 10;

  PipelineOptions maintained = base;
  maintained.reuse_solving = true;

  PipelineOptions patched = base;
  patched.reuse_solving = true;
  patched.reasoner.reasoner.solving.maintain_fixpoint = false;

  const std::string want = PipelineTranscript(*program, base, stream);
  EXPECT_FALSE(want.empty());

  PipelineStats maintained_stats;
  EXPECT_EQ(PipelineTranscript(*program, maintained, stream,
                               &maintained_stats),
            want);
  EXPECT_GT(maintained_stats.fixpoint_maintained_windows, 0u);
  EXPECT_GT(maintained_stats.atoms_touched, 0u);
  EXPECT_GT(maintained_stats.assignments_reused, 0u);

  PipelineStats patched_stats;
  EXPECT_EQ(PipelineTranscript(*program, patched, stream, &patched_stats),
            want);
  EXPECT_EQ(patched_stats.fixpoint_maintained_windows, 0u);
}

TEST_F(SolvingReuseTest, DisjunctiveProgramKeepsColdSolvePath) {
  Parser parser(symbols_);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input on/1.
    p(X) | q(X) :- on(X).
    #show p/1, q/1.
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  GeneratorOptions gen;
  gen.seed = 7;
  std::vector<StreamPredicate> schema(1);
  schema[0].predicate = symbols_->Intern("on");
  schema[0].has_object = false;
  SyntheticStreamGenerator generator(schema, gen);
  const std::vector<Triple> stream = generator.GenerateWindow(120);

  PipelineOptions base;
  base.window_size = 40;
  base.window_slide = 10;

  PipelineOptions warm = base;
  warm.reuse_solving = true;

  PipelineStats warm_stats;
  const std::string want = PipelineTranscript(*program, base, stream);
  const std::string got =
      PipelineTranscript(*program, warm, stream, &warm_stats);
  EXPECT_FALSE(want.empty());
  EXPECT_EQ(want, got);
  // The disjunctive guard must route everything through the cold solver.
  EXPECT_EQ(warm_stats.incremental_solve_windows, 0u);
  EXPECT_EQ(warm_stats.solve_rebuilds, 0u);
  EXPECT_EQ(warm_stats.warm_start_hits, 0u);
}

}  // namespace
}  // namespace streamasp
