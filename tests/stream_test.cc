#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "stream/format.h"
#include "stream/generator.h"
#include "stream/query_processor.h"
#include "stream/triple.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

// ---------------------------------------------------------------- Triple.

TEST(TripleTest, ToStringWithAndWithoutObject) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Triple binary{Term::Integer(3), symbols->Intern("average_speed"),
                Term::Integer(10)};
  EXPECT_EQ(binary.ToString(*symbols), "<3, average_speed, 10>");
  Triple unary{Term::Integer(3), symbols->Intern("traffic_light"),
               std::nullopt};
  EXPECT_EQ(unary.ToString(*symbols), "<3, traffic_light>");
}

// --------------------------------------------------- DataFormatProcessor.

class FormatTest : public ::testing::Test {
 protected:
  FormatTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
  DataFormatProcessor format_;
};

TEST_F(FormatTest, BinaryRoundTrip) {
  const SymbolId speed = symbols_->Intern("average_speed");
  ASSERT_TRUE(format_.DeclarePredicate(speed, 2).ok());
  const Triple triple{Term::Integer(5), speed, Term::Integer(12)};
  StatusOr<Atom> fact = format_.ToFact(triple);
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact->ToString(*symbols_), "average_speed(5,12)");
  StatusOr<Triple> back = format_.ToTriple(*fact);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, triple);
}

TEST_F(FormatTest, UnaryRoundTrip) {
  const SymbolId light = symbols_->Intern("traffic_light");
  ASSERT_TRUE(format_.DeclarePredicate(light, 1).ok());
  const Triple triple{Term::Integer(7), light, std::nullopt};
  StatusOr<Atom> fact = format_.ToFact(triple);
  ASSERT_TRUE(fact.ok());
  EXPECT_EQ(fact->arity(), 1u);
}

TEST_F(FormatTest, UndeclaredPredicateFails) {
  const Triple triple{Term::Integer(1), symbols_->Intern("ghost"),
                      std::nullopt};
  EXPECT_EQ(format_.ToFact(triple).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(FormatTest, ArityMismatchFails) {
  const SymbolId p = symbols_->Intern("p");
  ASSERT_TRUE(format_.DeclarePredicate(p, 2).ok());
  // Missing object.
  EXPECT_FALSE(format_.ToFact(Triple{Term::Integer(1), p, std::nullopt}).ok());
  const SymbolId q = symbols_->Intern("q");
  ASSERT_TRUE(format_.DeclarePredicate(q, 1).ok());
  // Superfluous object.
  EXPECT_FALSE(
      format_.ToFact(Triple{Term::Integer(1), q, Term::Integer(2)}).ok());
}

TEST_F(FormatTest, RedeclarationMustAgree) {
  const SymbolId p = symbols_->Intern("p");
  ASSERT_TRUE(format_.DeclarePredicate(p, 2).ok());
  EXPECT_TRUE(format_.DeclarePredicate(p, 2).ok());
  EXPECT_FALSE(format_.DeclarePredicate(p, 1).ok());
}

TEST_F(FormatTest, ArityOutOfTripleRangeRejected) {
  EXPECT_FALSE(format_.DeclarePredicate(symbols_->Intern("p"), 0).ok());
  EXPECT_FALSE(format_.DeclarePredicate(symbols_->Intern("q"), 3).ok());
}

TEST_F(FormatTest, ToFactsTranslatesWholeWindow) {
  const SymbolId p = symbols_->Intern("p");
  ASSERT_TRUE(format_.DeclarePredicate(p, 2).ok());
  std::vector<Triple> window = {
      Triple{Term::Integer(1), p, Term::Integer(2)},
      Triple{Term::Integer(3), p, Term::Integer(4)}};
  StatusOr<std::vector<Atom>> facts = format_.ToFacts(window);
  ASSERT_TRUE(facts.ok());
  EXPECT_EQ(facts->size(), 2u);
}

TEST_F(FormatTest, ToTripleRejectsBadAtoms) {
  const Atom arity3(symbols_->Intern("p"),
                    {Term::Integer(1), Term::Integer(2), Term::Integer(3)});
  EXPECT_FALSE(format_.ToTriple(arity3).ok());
  const Atom non_ground(symbols_->Intern("p"),
                        {Term::Variable(symbols_->Intern("X"))});
  EXPECT_FALSE(format_.ToTriple(non_ground).ok());
}

// ------------------------------------------------------------- Generator.

class GeneratorTest : public ::testing::Test {
 protected:
  GeneratorTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
};

TEST_F(GeneratorTest, ProducesRequestedCount) {
  SyntheticStreamGenerator gen(MakeTrafficSchema(*symbols_), {});
  EXPECT_EQ(gen.GenerateWindow(1000).size(), 1000u);
  EXPECT_TRUE(gen.GenerateWindow(0).empty());
}

TEST_F(GeneratorTest, DeterministicForSeed) {
  GeneratorOptions options;
  options.seed = 99;
  SyntheticStreamGenerator a(MakeTrafficSchema(*symbols_), options);
  SyntheticStreamGenerator b(MakeTrafficSchema(*symbols_), options);
  const std::vector<Triple> wa = a.GenerateWindow(200);
  const std::vector<Triple> wb = b.GenerateWindow(200);
  EXPECT_EQ(wa, wb);
}

TEST_F(GeneratorTest, PaperUniformValuesBoundedByWindowSize) {
  GeneratorOptions options;
  options.profile = GeneratorProfile::kPaperUniform;
  SyntheticStreamGenerator gen(MakeTrafficSchema(*symbols_), options);
  const size_t n = 500;
  for (const Triple& t : gen.GenerateWindow(n)) {
    ASSERT_TRUE(t.subject.is_integer());
    EXPECT_GE(t.subject.integer_value(), 0);
    EXPECT_LT(t.subject.integer_value(), static_cast<int64_t>(n));
    if (t.object.has_value() && t.object->is_integer()) {
      EXPECT_GE(t.object->integer_value(), 0);
      EXPECT_LT(t.object->integer_value(), static_cast<int64_t>(n));
    }
  }
}

TEST_F(GeneratorTest, EventRichSubjectsComeFromSmallPool) {
  GeneratorOptions options;
  options.profile = GeneratorProfile::kEventRich;
  options.location_divisor = 100;
  SyntheticStreamGenerator gen(MakeTrafficSchema(*symbols_), options);
  std::set<int64_t> subjects;
  for (const Triple& t : gen.GenerateWindow(2000)) {
    subjects.insert(t.subject.integer_value());
  }
  EXPECT_LE(subjects.size(), 20u);  // Pool is 2000/100 = 20.
}

TEST_F(GeneratorTest, SchemaCoverage) {
  SyntheticStreamGenerator gen(MakeTrafficSchema(*symbols_), {});
  std::set<SymbolId> predicates;
  for (const Triple& t : gen.GenerateWindow(2000)) {
    predicates.insert(t.predicate);
  }
  EXPECT_EQ(predicates.size(), 6u);
}

TEST_F(GeneratorTest, ObjectPoolRespected) {
  SyntheticStreamGenerator gen(MakeTrafficSchema(*symbols_), {});
  const SymbolId smoke = symbols_->Intern("car_in_smoke");
  const SymbolId high = symbols_->Intern("high");
  const SymbolId low = symbols_->Intern("low");
  for (const Triple& t : gen.GenerateWindow(3000)) {
    if (t.predicate != smoke) continue;
    ASSERT_TRUE(t.object.has_value());
    ASSERT_TRUE(t.object->is_symbol());
    EXPECT_TRUE(t.object->symbol() == high || t.object->symbol() == low);
  }
}

TEST_F(GeneratorTest, WeightsSkewPredicateShares) {
  std::vector<StreamPredicate> schema = MakeTrafficSchema(*symbols_);
  // Make car_number ~25% of the stream (weight 5/3 against 5 x 1.0).
  for (StreamPredicate& shape : schema) {
    if (shape.predicate == symbols_->Intern("car_number")) {
      shape.weight = 5.0 / 3.0;
    }
  }
  SyntheticStreamGenerator gen(schema, {});
  std::map<SymbolId, size_t> counts;
  const size_t n = 20000;
  for (const Triple& t : gen.GenerateWindow(n)) ++counts[t.predicate];
  const double share = static_cast<double>(
                           counts[symbols_->Intern("car_number")]) / n;
  EXPECT_NEAR(share, 0.25, 0.02);
}

TEST_F(GeneratorTest, SequenceNumbersIncrease) {
  SyntheticStreamGenerator gen(MakeTrafficSchema(*symbols_), {});
  EXPECT_EQ(gen.GenerateTripleWindow(10).sequence, 0u);
  EXPECT_EQ(gen.GenerateTripleWindow(10).sequence, 1u);
}

// -------------------------------------------------- StreamQueryProcessor.

class QueryProcessorTest : public ::testing::Test {
 protected:
  QueryProcessorTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
};

TEST_F(QueryProcessorTest, WindowsEmittedAtSize) {
  std::vector<TripleWindow> windows;
  StreamQueryProcessor proc(3, [&](const TripleWindow& w) {
    windows.push_back(w);
  });
  const SymbolId p = symbols_->Intern("p");
  proc.RegisterPredicate(p);
  for (int i = 0; i < 7; ++i) {
    proc.Push(Triple{Term::Integer(i), p, std::nullopt});
  }
  EXPECT_EQ(windows.size(), 2u);
  EXPECT_EQ(windows[0].size(), 3u);
  EXPECT_EQ(windows[0].sequence, 0u);
  EXPECT_EQ(windows[1].sequence, 1u);
  proc.Flush();
  ASSERT_EQ(windows.size(), 3u);
  EXPECT_EQ(windows[2].size(), 1u);
}

TEST_F(QueryProcessorTest, FiltersUnregisteredPredicates) {
  std::vector<TripleWindow> windows;
  StreamQueryProcessor proc(2, [&](const TripleWindow& w) {
    windows.push_back(w);
  });
  const SymbolId keep = symbols_->Intern("keep");
  const SymbolId drop = symbols_->Intern("drop");
  proc.RegisterPredicate(keep);
  proc.Push(Triple{Term::Integer(1), keep, std::nullopt});
  proc.Push(Triple{Term::Integer(2), drop, std::nullopt});
  proc.Push(Triple{Term::Integer(3), keep, std::nullopt});
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_EQ(proc.dropped_count(), 1u);
  for (const Triple& t : windows[0].items) {
    EXPECT_EQ(t.predicate, keep);
  }
}

TEST_F(QueryProcessorTest, FlushOnEmptyIsNoOp) {
  int calls = 0;
  StreamQueryProcessor proc(2, [&](const TripleWindow&) { ++calls; });
  proc.Flush();
  EXPECT_EQ(calls, 0);
}

TEST_F(QueryProcessorTest, PushBatchAndCounters) {
  int calls = 0;
  StreamQueryProcessor proc(5, [&](const TripleWindow&) { ++calls; });
  const SymbolId p = symbols_->Intern("p");
  proc.RegisterPredicate(p);
  std::vector<Triple> batch(12, Triple{Term::Integer(0), p, std::nullopt});
  proc.PushBatch(batch);
  EXPECT_EQ(calls, 2);
  EXPECT_EQ(proc.emitted_windows(), 2u);
}

TEST_F(QueryProcessorTest, ZeroWindowSizeClampedToOne) {
  int calls = 0;
  StreamQueryProcessor proc(0, [&](const TripleWindow&) { ++calls; });
  const SymbolId p = symbols_->Intern("p");
  proc.RegisterPredicate(p);
  proc.Push(Triple{Term::Integer(0), p, std::nullopt});
  EXPECT_EQ(calls, 1);
}

}  // namespace
}  // namespace streamasp
