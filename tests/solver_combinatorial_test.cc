// End-to-end combinatorial programs (variables → grounding → search →
// enumeration), checking answer-set COUNTS against closed-form results:
// graph colorings (chromatic polynomial), independent sets, and
// vertex-cover-style guess-and-check encodings via even negation cycles.

#include <string>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "solve/solver.h"

namespace streamasp {
namespace {

size_t CountModels(const std::string& text) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(text);
  EXPECT_TRUE(program.ok()) << program.status();
  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  EXPECT_TRUE(ground.ok()) << ground.status();
  Solver solver;
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  EXPECT_TRUE(models.ok()) << models.status();
  return models->size();
}

/// 3-coloring harness: guess one of {r, g, b} per node via negation
/// cycles, forbid monochromatic edges.
std::string ColoringProgram(const std::string& node_facts,
                            const std::string& edge_facts) {
  return node_facts + edge_facts + R"(
    color(r). color(g). color(b).
    has(N, r) :- node(N), not has(N, g), not has(N, b).
    has(N, g) :- node(N), not has(N, r), not has(N, b).
    has(N, b) :- node(N), not has(N, r), not has(N, g).
    :- edge(X, Y), has(X, C), has(Y, C).
  )";
}

TEST(ColoringTest, SingleNodeHasThreeColorings) {
  EXPECT_EQ(CountModels(ColoringProgram("node(1).", "")), 3u);
}

TEST(ColoringTest, EdgeForbidsMonochromatic) {
  // P2: chromatic polynomial k(k-1) = 6 for k = 3.
  EXPECT_EQ(CountModels(ColoringProgram("node(1). node(2).",
                                        "edge(1, 2).")),
            6u);
}

TEST(ColoringTest, TriangleHasSixColorings) {
  // K3: k(k-1)(k-2) = 6.
  EXPECT_EQ(CountModels(ColoringProgram(
                "node(1). node(2). node(3).",
                "edge(1, 2). edge(2, 3). edge(1, 3).")),
            6u);
}

TEST(ColoringTest, PathOfFourNodes) {
  // P4: k(k-1)^3 = 3 * 8 = 24.
  EXPECT_EQ(CountModels(ColoringProgram(
                "node(1). node(2). node(3). node(4).",
                "edge(1, 2). edge(2, 3). edge(3, 4).")),
            24u);
}

TEST(ColoringTest, CycleOfFourNodes) {
  // C4: (k-1)^4 + (k-1) = 16 + 2 = 18.
  EXPECT_EQ(CountModels(ColoringProgram(
                "node(1). node(2). node(3). node(4).",
                "edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 1).")),
            18u);
}

TEST(ColoringTest, K4IsNotThreeColorable) {
  EXPECT_EQ(CountModels(ColoringProgram(
                "node(1). node(2). node(3). node(4).",
                "edge(1, 2). edge(1, 3). edge(1, 4). edge(2, 3). "
                "edge(2, 4). edge(3, 4).")),
            0u);
}

/// Independent-set harness: guess in/out per node, forbid adjacent ins.
std::string IndependentSetProgram(int nodes,
                                  const std::string& edge_facts) {
  std::string text;
  for (int i = 1; i <= nodes; ++i) {
    text += "node(" + std::to_string(i) + ").\n";
  }
  text += edge_facts + R"(
    in(N) :- node(N), not out(N).
    out(N) :- node(N), not in(N).
    :- edge(X, Y), in(X), in(Y).
  )";
  return text;
}

TEST(IndependentSetTest, NoEdgesAllSubsets) {
  EXPECT_EQ(CountModels(IndependentSetProgram(3, "")), 8u);
}

TEST(IndependentSetTest, PathOfThree) {
  // Independent sets of P3: {}, {1}, {2}, {3}, {1,3} = 5.
  EXPECT_EQ(CountModels(IndependentSetProgram(
                3, "edge(1, 2). edge(2, 3).")),
            5u);
}

TEST(IndependentSetTest, TriangleHasFour) {
  // {}, {1}, {2}, {3}.
  EXPECT_EQ(CountModels(IndependentSetProgram(
                3, "edge(1, 2). edge(2, 3). edge(1, 3).")),
            4u);
}

TEST(IndependentSetTest, C5HasElevenIndependentSets) {
  // Lucas number L5 = 11.
  EXPECT_EQ(CountModels(IndependentSetProgram(
                5,
                "edge(1, 2). edge(2, 3). edge(3, 4). edge(4, 5). "
                "edge(5, 1).")),
            11u);
}

// Reachability + negation: unreachable nodes via stratified complement.
TEST(ReachabilityTest, UnreachableViaStratifiedNegation) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram(R"(
    edge(1, 2). edge(2, 3). edge(4, 5).
    node(1). node(2). node(3). node(4). node(5).
    reach(1).
    reach(Y) :- reach(X), edge(X, Y).
    unreachable(N) :- node(N), not reach(N).
  )");
  ASSERT_TRUE(program.ok());
  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok());
  Solver solver;
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->size(), 1u);
  const AnswerSet& model = (*models)[0];
  auto contains = [&](const std::string& text) {
    Parser p2(symbols);
    const Atom atom = *p2.ParseGroundAtom(text);
    const GroundAtomId id = ground->atoms().Lookup(atom);
    return id != kInvalidGroundAtom && model.Contains(id);
  };
  EXPECT_TRUE(contains("reach(3)"));
  EXPECT_TRUE(contains("unreachable(4)"));
  EXPECT_TRUE(contains("unreachable(5)"));
  EXPECT_FALSE(contains("unreachable(2)"));
}

// Parameterized sweep: independent sets on paths follow the Fibonacci
// recurrence F(n+2); checks grounder+solver against a closed form at
// growing sizes.
class PathIndependentSetTest : public ::testing::TestWithParam<int> {};

TEST_P(PathIndependentSetTest, CountsFollowFibonacci) {
  const int n = GetParam();
  std::string edges;
  for (int i = 1; i < n; ++i) {
    edges += "edge(" + std::to_string(i) + ", " + std::to_string(i + 1) +
             ").\n";
  }
  // F(2)=1, F(3)=2, ...; independent sets of P_n = F(n+2).
  auto fib = [](int k) {
    uint64_t a = 0, b = 1;
    for (int i = 0; i < k; ++i) {
      const uint64_t next = a + b;
      a = b;
      b = next;
    }
    return a;
  };
  EXPECT_EQ(CountModels(IndependentSetProgram(n, edges)), fib(n + 2));
}

INSTANTIATE_TEST_SUITE_P(PathsUpTo10, PathIndependentSetTest,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8, 9, 10));

}  // namespace
}  // namespace streamasp
