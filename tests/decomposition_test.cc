#include <set>
#include <string>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "depgraph/decomposition.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class DecompositionTest : public ::testing::Test {
 protected:
  DecompositionTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  PredicateSignature Sig(const std::string& name, uint32_t arity) {
    return PredicateSignature{symbols_->Intern(name), arity};
  }

  PartitioningPlan PlanFor(const Program& program,
                           DecompositionInfo* info = nullptr) {
    StatusOr<InputDependencyGraph> graph =
        InputDependencyGraph::Build(program);
    EXPECT_TRUE(graph.ok()) << graph.status();
    StatusOr<PartitioningPlan> plan =
        DecomposeInputDependencyGraph(*graph, {}, info);
    EXPECT_TRUE(plan.ok()) << plan.status();
    return std::move(plan).value();
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

TEST_F(DecompositionTest, DisconnectedGraphUsesComponents) {
  StatusOr<Program> p =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(p.ok());
  DecompositionInfo info;
  const PartitioningPlan plan = PlanFor(*p, &info);

  EXPECT_FALSE(info.graph_was_connected);
  EXPECT_EQ(plan.num_communities(), 2);
  EXPECT_TRUE(plan.DuplicatedPredicates().empty());

  // The two communities are exactly the Figure 3 components.
  const std::vector<int>& left = plan.CommunitiesOf(Sig("average_speed", 2));
  ASSERT_EQ(left.size(), 1u);
  EXPECT_EQ(plan.CommunitiesOf(Sig("car_number", 2)), left);
  EXPECT_EQ(plan.CommunitiesOf(Sig("traffic_light", 1)), left);
  const std::vector<int>& right = plan.CommunitiesOf(Sig("car_in_smoke", 2));
  ASSERT_EQ(right.size(), 1u);
  EXPECT_EQ(plan.CommunitiesOf(Sig("car_speed", 2)), right);
  EXPECT_EQ(plan.CommunitiesOf(Sig("car_location", 2)), right);
  EXPECT_NE(left, right);
}

// Figure 5: P' decomposes into two communities with duplicated car_number.
TEST_F(DecompositionTest, ConnectedGraphDuplicatesSmallerExnodeSet) {
  StatusOr<Program> p =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kPPrime, false);
  ASSERT_TRUE(p.ok());
  DecompositionInfo info;
  const PartitioningPlan plan = PlanFor(*p, &info);

  EXPECT_TRUE(info.graph_was_connected);
  EXPECT_EQ(plan.num_communities(), 2);
  const auto duplicated = plan.DuplicatedPredicates();
  ASSERT_EQ(duplicated.size(), 1u);
  EXPECT_EQ(symbols_->NameOf(duplicated[0].name), "car_number");
  EXPECT_EQ(plan.CommunitiesOf(Sig("car_number", 2)).size(), 2u);
  EXPECT_EQ(plan.CommunitiesOf(Sig("average_speed", 2)).size(), 1u);
  EXPECT_EQ(info.num_duplicated_predicates, 1);
}

TEST_F(DecompositionTest, CliqueFallsBackToSingleCommunity) {
  StatusOr<Program> p = parser_.ParseProgram(R"(
    #input a/0, b/0, c/0.
    h :- a, b, c.
  )");
  ASSERT_TRUE(p.ok());
  DecompositionInfo info;
  const PartitioningPlan plan = PlanFor(*p, &info);
  EXPECT_TRUE(info.graph_was_connected);
  EXPECT_EQ(plan.num_communities(), 1);
  EXPECT_TRUE(plan.DuplicatedPredicates().empty());
}

TEST_F(DecompositionTest, ManyIndependentPredicatesManyCommunities) {
  StatusOr<Program> p = parser_.ParseProgram(R"(
    #input a/0, b/0, c/0, d/0.
    ha :- a.
    hb :- b.
    hc :- c.
    hd :- d.
  )");
  ASSERT_TRUE(p.ok());
  const PartitioningPlan plan = PlanFor(*p);
  EXPECT_EQ(plan.num_communities(), 4);
}

TEST_F(DecompositionTest, DeterministicAcrossRuns) {
  StatusOr<Program> p =
      MakeTrafficProgram(symbols_, TrafficProgramVariant::kPPrime, false);
  ASSERT_TRUE(p.ok());
  const PartitioningPlan a = PlanFor(*p);
  const PartitioningPlan b = PlanFor(*p);
  ASSERT_EQ(a.num_communities(), b.num_communities());
  for (const PredicateSignature& sig : a.predicates()) {
    EXPECT_EQ(a.CommunitiesOf(sig), b.CommunitiesOf(sig));
  }
}

// -------------------------------------------------- PartitioningPlan API.

TEST_F(DecompositionTest, PlanAssignIsIdempotentAndSorted) {
  PartitioningPlan plan(3);
  const PredicateSignature p = Sig("p", 1);
  plan.Assign(p, 2);
  plan.Assign(p, 0);
  plan.Assign(p, 2);
  EXPECT_EQ(plan.CommunitiesOf(p), (std::vector<int>{0, 2}));
  EXPECT_EQ(plan.DuplicatedPredicates().size(), 1u);
}

TEST_F(DecompositionTest, PlanUnknownPredicateHasNoCommunities) {
  PartitioningPlan plan(1);
  EXPECT_TRUE(plan.CommunitiesOf(Sig("ghost", 9)).empty());
}

TEST_F(DecompositionTest, PlanMembersOf) {
  PartitioningPlan plan(2);
  plan.Assign(Sig("a", 1), 0);
  plan.Assign(Sig("b", 1), 1);
  plan.Assign(Sig("c", 1), 0);
  plan.Assign(Sig("c", 1), 1);
  EXPECT_EQ(plan.MembersOf(0).size(), 2u);
  EXPECT_EQ(plan.MembersOf(1).size(), 2u);
}

TEST_F(DecompositionTest, PlanToStringListsCommunitiesAndDuplicates) {
  PartitioningPlan plan(2);
  plan.Assign(Sig("a", 1), 0);
  plan.Assign(Sig("a", 1), 1);
  const std::string text = plan.ToString(*symbols_);
  EXPECT_NE(text.find("community 0"), std::string::npos);
  EXPECT_NE(text.find("duplicated"), std::string::npos);
}

TEST_F(DecompositionTest, EmptyGraphRejected) {
  PartitioningPlan unused(0);
  StatusOr<Program> p = parser_.ParseProgram("h :- a.");
  ASSERT_TRUE(p.ok());
  // No input predicates: the graph builder itself refuses.
  EXPECT_FALSE(InputDependencyGraph::Build(*p).ok());
}

}  // namespace
}  // namespace streamasp
