#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/louvain.h"
#include "util/rng.h"

namespace streamasp {
namespace {

/// Two k-cliques joined by one bridge edge — the canonical community
/// structure.
UndirectedGraph TwoCliques(NodeId clique_size) {
  UndirectedGraph g(2 * clique_size);
  for (NodeId base : {NodeId{0}, clique_size}) {
    for (NodeId i = 0; i < clique_size; ++i) {
      for (NodeId j = i + 1; j < clique_size; ++j) {
        g.AddEdge(base + i, base + j);
      }
    }
  }
  g.AddEdge(0, clique_size);  // Bridge.
  return g;
}

TEST(ModularityTest, SingletonPartitionOfCliqueIsNegativeOrZero) {
  const UndirectedGraph g = TwoCliques(4);
  std::vector<int> singletons(g.num_nodes());
  for (size_t i = 0; i < singletons.size(); ++i) {
    singletons[i] = static_cast<int>(i);
  }
  EXPECT_LE(Modularity(g, singletons, 1.0), 0.0);
}

TEST(ModularityTest, GoodSplitBeatsOnePartition) {
  const UndirectedGraph g = TwoCliques(4);
  std::vector<int> one(g.num_nodes(), 0);
  std::vector<int> split(g.num_nodes(), 0);
  for (NodeId i = 4; i < 8; ++i) split[i] = 1;
  EXPECT_GT(Modularity(g, split, 1.0), Modularity(g, one, 1.0));
}

TEST(ModularityTest, EmptyGraphIsZero) {
  UndirectedGraph g(3);
  EXPECT_DOUBLE_EQ(Modularity(g, {0, 0, 0}, 1.0), 0.0);
}

TEST(ModularityTest, SelfLoopsEnterTheFormula) {
  UndirectedGraph g(2);
  g.AddEdge(0, 1, 1.0);
  g.AddEdge(0, 0, 1.0);
  // Just exercising the code path: value must be finite and <= 1.
  const double q = Modularity(g, {0, 1}, 1.0);
  EXPECT_LE(q, 1.0);
  EXPECT_GE(q, -1.0);
}

TEST(LouvainTest, SplitsTwoCliques) {
  const UndirectedGraph g = TwoCliques(5);
  const ComponentAssignment c = LouvainCommunities(g);
  EXPECT_EQ(c.num_components, 2);
  // Each clique must be uniform.
  for (NodeId i = 1; i < 5; ++i) {
    EXPECT_EQ(c.component_of[i], c.component_of[0]);
  }
  for (NodeId i = 6; i < 10; ++i) {
    EXPECT_EQ(c.component_of[i], c.component_of[5]);
  }
  EXPECT_NE(c.component_of[0], c.component_of[5]);
}

TEST(LouvainTest, DisconnectedComponentsNeverMerge) {
  UndirectedGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  g.AddEdge(4, 5);
  const ComponentAssignment c = LouvainCommunities(g);
  EXPECT_GE(c.num_components, 2);
  EXPECT_NE(c.component_of[0], c.component_of[3]);
}

TEST(LouvainTest, EmptyAndTinyGraphs) {
  UndirectedGraph empty;
  EXPECT_EQ(LouvainCommunities(empty).num_components, 0);

  UndirectedGraph single(1);
  const ComponentAssignment c1 = LouvainCommunities(single);
  EXPECT_EQ(c1.num_components, 1);

  UndirectedGraph isolated(3);  // No edges: every node its own community.
  EXPECT_EQ(LouvainCommunities(isolated).num_components, 3);
}

TEST(LouvainTest, DeterministicAcrossRuns) {
  const UndirectedGraph g = TwoCliques(6);
  const ComponentAssignment a = LouvainCommunities(g);
  const ComponentAssignment b = LouvainCommunities(g);
  EXPECT_EQ(a.component_of, b.component_of);
}

TEST(LouvainTest, ImprovesModularityOverSingletons) {
  const UndirectedGraph g = TwoCliques(4);
  std::vector<int> singletons(g.num_nodes());
  for (size_t i = 0; i < singletons.size(); ++i) {
    singletons[i] = static_cast<int>(i);
  }
  const ComponentAssignment c = LouvainCommunities(g);
  EXPECT_GE(Modularity(g, c.component_of, 1.0),
            Modularity(g, singletons, 1.0));
}

TEST(LouvainTest, HighResolutionYieldsMoreCommunities) {
  // A ring of 4 small cliques: low resolution merges them, high splits.
  UndirectedGraph g(12);
  for (int c = 0; c < 4; ++c) {
    const NodeId base = static_cast<NodeId>(3 * c);
    g.AddEdge(base, base + 1);
    g.AddEdge(base + 1, base + 2);
    g.AddEdge(base, base + 2);
  }
  for (int c = 0; c < 4; ++c) {
    g.AddEdge(static_cast<NodeId>(3 * c),
              static_cast<NodeId>((3 * c + 3) % 12));
  }
  LouvainOptions low;
  low.resolution = 0.05;
  LouvainOptions high;
  high.resolution = 2.0;
  EXPECT_LE(LouvainCommunities(g, low).num_components,
            LouvainCommunities(g, high).num_components);
}

TEST(LouvainTest, WeightsMatter) {
  // Path a-b-c where a-b is heavy and b-c is light: b must join a.
  UndirectedGraph g(4);
  g.AddEdge(0, 1, 10.0);
  g.AddEdge(1, 2, 0.1);
  g.AddEdge(2, 3, 10.0);
  const ComponentAssignment c = LouvainCommunities(g);
  EXPECT_EQ(c.component_of[0], c.component_of[1]);
  EXPECT_EQ(c.component_of[2], c.component_of[3]);
  EXPECT_NE(c.component_of[0], c.component_of[2]);
}

// Property: on random graphs Louvain never crosses connected components
// and always produces a compacted labeling 0..k-1.
class LouvainPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LouvainPropertyTest, LabelsAreCompact) {
  Rng rng(GetParam());
  const NodeId n = 2 + static_cast<NodeId>(rng.NextBounded(30));
  UndirectedGraph g(n);
  const size_t edges = rng.NextBounded(2 * n);
  for (size_t i = 0; i < edges; ++i) {
    g.AddEdge(static_cast<NodeId>(rng.NextBounded(n)),
              static_cast<NodeId>(rng.NextBounded(n)));
  }
  const ComponentAssignment c = LouvainCommunities(g);
  std::set<int> labels(c.component_of.begin(), c.component_of.end());
  EXPECT_EQ(static_cast<int>(labels.size()), c.num_components);
  EXPECT_EQ(*labels.begin(), 0);
  EXPECT_EQ(*labels.rbegin(), c.num_components - 1);
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, LouvainPropertyTest,
                         ::testing::Range<uint64_t>(100, 110));

}  // namespace
}  // namespace streamasp
