// StreamRulePipeline facade: design-time wiring, stream loop, statistics,
// baseline mode, and error surfaces.

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "stream/generator.h"
#include "streamrule/accuracy.h"
#include "streamrule/pipeline.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class PipelineFacadeTest : public ::testing::Test {
 protected:
  PipelineFacadeTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
};

TEST_F(PipelineFacadeTest, ProcessesWholeStream) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  size_t callbacks = 0;
  PipelineOptions options;
  options.window_size = 1000;
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(
          &*program, options,
          [&](const TripleWindow& window, const ParallelReasonerResult& r) {
            ++callbacks;
            // Full windows while streaming; the flushed trailer is smaller.
            EXPECT_LE(window.size(), 1000u);
            EXPECT_EQ(r.num_partitions, 2u);
          });
  ASSERT_TRUE(pipeline.ok()) << pipeline.status();

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
  (*pipeline)->PushBatch(generator.GenerateWindow(3500));
  EXPECT_EQ(callbacks, 3u);
  (*pipeline)->Flush();
  EXPECT_EQ(callbacks, 4u);  // Trailing 500-item window.

  const PipelineStats& stats = (*pipeline)->stats();
  EXPECT_EQ(stats.windows, 4u);
  EXPECT_EQ(stats.items, 3500u);
  EXPECT_EQ(stats.errors, 0u);
  EXPECT_GT(stats.mean_latency_ms(), 0.0);
  EXPECT_GE(stats.max_latency_ms, stats.mean_latency_ms());
}

TEST_F(PipelineFacadeTest, DesignTimeArtifactsExposed) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kPPrime, false);
  ASSERT_TRUE(program.ok());
  StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
      StreamRulePipeline::Create(&*program, {},
                                 [](const TripleWindow&,
                                    const ParallelReasonerResult&) {});
  ASSERT_TRUE(pipeline.ok());
  EXPECT_TRUE((*pipeline)->decomposition_info().graph_was_connected);
  EXPECT_EQ((*pipeline)->plan().num_communities(), 2);
  EXPECT_EQ((*pipeline)->plan().DuplicatedPredicates().size(), 1u);
}

TEST_F(PipelineFacadeTest, BaselineModeMatchesPartitionedAnswers) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::vector<GroundAnswer> partitioned;
  std::vector<GroundAnswer> baseline;
  PipelineOptions fast;
  fast.window_size = 2000;
  PipelineOptions whole = fast;
  whole.disable_partitioning = true;

  auto run = [&](const PipelineOptions& options,
                 std::vector<GroundAnswer>* sink) {
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &*program, options,
            [&](const TripleWindow&, const ParallelReasonerResult& r) {
              for (const GroundAnswer& answer : r.answers) {
                sink->push_back(answer);
              }
            });
    ASSERT_TRUE(pipeline.ok());
    SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
    (*pipeline)->PushBatch(generator.GenerateWindow(4000));
    (*pipeline)->Flush();
  };
  run(fast, &partitioned);
  run(whole, &baseline);

  ASSERT_EQ(partitioned.size(), baseline.size());
  for (size_t i = 0; i < partitioned.size(); ++i) {
    EXPECT_TRUE(AnswersEqual(partitioned[i], baseline[i]));
  }
}

TEST_F(PipelineFacadeTest, CreateRejectsBadArguments) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, false);
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(StreamRulePipeline::Create(
                   nullptr, {},
                   [](const TripleWindow&, const ParallelReasonerResult&) {})
                   .ok());
  EXPECT_FALSE(StreamRulePipeline::Create(
                   &*program, {}, StreamRulePipeline::ResultCallback())
                   .ok());
  EXPECT_FALSE(
      StreamRulePipeline::Create(&*program, {}, EmissionHandler()).ok());
}

TEST_F(PipelineFacadeTest, CreateRejectsProgramWithoutInputs) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program = parser.ParseProgram("a :- b. b.");
  ASSERT_TRUE(program.ok());
  EXPECT_FALSE(StreamRulePipeline::Create(
                   &*program, {},
                   [](const TripleWindow&, const ParallelReasonerResult&) {})
                   .ok());
}

}  // namespace
}  // namespace streamasp
