// The session server stack: wire codec, session lifecycle, the
// multi-tenant isolation property (concurrent sessions' emission streams
// byte-identical to standalone engines; saturating one session never
// degrades another), the in-proc transport, and a TCP loopback smoke.

#include <gtest/gtest.h>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <deque>
#include <fstream>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "asp/parser.h"
#include "server/server.h"
#include "server/session.h"
#include "server/tcp.h"
#include "server/wire.h"
#include "stream/generator.h"
#include "streamrule/answer.h"
#include "streamrule/engine.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

// ---------------------------------------------------------------------------
// Wire codec.
// ---------------------------------------------------------------------------

TEST(WireTest, FrameRoundTrip) {
  FrameDecoder decoder;
  decoder.Feed(EncodeFrame("hello"));
  decoder.Feed(EncodeFrame(""));
  decoder.Feed(EncodeFrame("ping\nline2"));
  std::string payload;
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "hello");
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "");
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "ping\nline2");
  EXPECT_FALSE(decoder.Next(&payload));
  EXPECT_TRUE(decoder.status().ok());
}

TEST(WireTest, FrameDecoderHandlesSplitFeeds) {
  const std::string frame = EncodeFrame("split across many feeds");
  FrameDecoder decoder;
  std::string payload;
  for (size_t i = 0; i + 1 < frame.size(); ++i) {
    decoder.Feed(std::string_view(&frame[i], 1));
    EXPECT_FALSE(decoder.Next(&payload));
  }
  decoder.Feed(std::string_view(&frame.back(), 1));
  ASSERT_TRUE(decoder.Next(&payload));
  EXPECT_EQ(payload, "split across many feeds");
}

TEST(WireTest, FrameDecoderWedgesOnOversizedFrame) {
  std::string huge_header;
  huge_header.push_back(static_cast<char>(0x7f));  // 0x7fffffff >> limit.
  huge_header.push_back(static_cast<char>(0xff));
  huge_header.push_back(static_cast<char>(0xff));
  huge_header.push_back(static_cast<char>(0xff));
  FrameDecoder decoder;
  decoder.Feed(huge_header);
  std::string payload;
  EXPECT_FALSE(decoder.Next(&payload));
  EXPECT_EQ(decoder.status().code(), StatusCode::kInvalidArgument);
  // Wedged: even a well-formed follow-up frame is refused.
  decoder.Feed(EncodeFrame("ping"));
  EXPECT_FALSE(decoder.Next(&payload));
}

TEST(WireTest, ParsesOpenWithOptionsAndProgram) {
  auto request = ParseRequest(
      "open s1 window=100 slide=25 shards=2 async=1 inflight=3 workers=2 "
      "reuse=solve queue=5 admission=reject batch=64\n"
      "a(X) :- b(X).\n"
      "#input b/1.");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->command, WireRequest::Command::kOpen);
  EXPECT_EQ(request->session, "s1");
  const SessionOptions& options = request->options;
  EXPECT_EQ(options.engine.pipeline.window_size, 100u);
  EXPECT_EQ(options.engine.pipeline.window_slide, 25u);
  EXPECT_EQ(options.engine.num_shards, 2u);
  EXPECT_TRUE(options.engine.pipeline.async);
  EXPECT_EQ(options.engine.pipeline.max_inflight_windows, 3u);
  EXPECT_EQ(options.engine.pipeline.num_reason_workers, 2u);
  EXPECT_TRUE(options.engine.pipeline.reuse_solving);
  EXPECT_EQ(options.ingest_queue_capacity, 5u);
  EXPECT_EQ(options.admission, BackpressurePolicy::kReject);
  EXPECT_EQ(options.engine.router_batch_size, 64u);
  EXPECT_EQ(options.program_text, "a(X) :- b(X).\n#input b/1.");
}

TEST(WireTest, ParseRequestRejectsMalformedInput) {
  EXPECT_EQ(ParseRequest("").status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("warble s1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("push").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 window").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 window=abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 admission=drop").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 reuse=maybe").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 color=red").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, ParsesVersionAndFairnessOptions) {
  auto request = ParseRequest(
      "open s1 window=100 async=1 inflight=3 weight=4 max_queued=8 "
      "max_inflight=2 v=1\n"
      "a(X) :- b(X).\n#input b/1.");
  ASSERT_TRUE(request.ok()) << request.status();
  EXPECT_EQ(request->options.weight, 4u);
  EXPECT_EQ(request->options.max_queued_windows, 8u);
  EXPECT_EQ(request->options.max_inflight, 2u);
  EXPECT_TRUE(request->has_version);
  EXPECT_EQ(request->protocol_version, kProtocolVersion);

  // Version is optional: v0-era clients that send no `v` still parse.
  auto unversioned = ParseRequest("open s2 window=10\np(a).");
  ASSERT_TRUE(unversioned.ok()) << unversioned.status();
  EXPECT_FALSE(unversioned->has_version);
}

TEST(WireTest, RejectsMalformedFairnessAndVersionOptions) {
  EXPECT_EQ(ParseRequest("open s1 weight=0").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 weight=abc").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 max_queued=-1").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 max_inflight=x").status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseRequest("open s1 v=abc").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(WireTest, ErrorRepliesCarryMachineReadableCodes) {
  EXPECT_EQ(ErrorCodeSlug(StatusCode::kNotFound), "unknown_session");
  EXPECT_EQ(ErrorCodeSlug(StatusCode::kResourceExhausted), "quota_exceeded");
  EXPECT_EQ(ErrorCodeSlug(StatusCode::kInvalidArgument), "invalid_argument");
  EXPECT_EQ(ErrorCodeSlug(StatusCode::kFailedPrecondition),
            "failed_precondition");

  const std::string not_found =
      FormatError("push", "ghost", NotFoundError("session 'ghost' not found"));
  EXPECT_EQ(not_found.rfind("error push ghost code=unknown_session ", 0), 0u)
      << not_found;
  const std::string custom = FormatError(
      "open", "s", InvalidArgumentError("unsupported protocol version v=9"),
      "unsupported_version");
  EXPECT_EQ(custom.rfind("error open s code=unsupported_version ", 0), 0u)
      << custom;
  EXPECT_EQ(FormatOpenOk("s1"), "ok open s1 v=1");
}

TEST(WireTest, ParsesTripleLines) {
  SymbolTablePtr symbols = MakeSymbolTable();
  auto unary = ParseTripleLine("traffic_light j1", *symbols);
  ASSERT_TRUE(unary.ok()) << unary.status();
  EXPECT_EQ(unary->predicate, symbols->Intern("traffic_light"));
  EXPECT_EQ(unary->subject, PackedTerm::Symbol(symbols->Intern("j1")));

  auto binary = ParseTripleLine("average_speed j1 17", *symbols);
  ASSERT_TRUE(binary.ok()) << binary.status();
  EXPECT_EQ(binary->object, PackedTerm::Integer(17));

  EXPECT_EQ(ParseTripleLine("lonely", *symbols).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ParseTripleLine("a b c d", *symbols).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Session lifecycle.
// ---------------------------------------------------------------------------

class SessionTest : public ::testing::Test {
 protected:
  SessionOptions TrafficOptions(size_t window_size) {
    SessionOptions options;
    options.program_text =
        TrafficProgramText(TrafficProgramVariant::kPPrime, /*with_show=*/true);
    options.engine.pipeline.window_size = window_size;
    return options;
  }

  std::vector<Triple> MakeStream(StreamSession& session, size_t items,
                                 uint64_t seed = 11) {
    GeneratorOptions options;
    options.seed = seed;
    SyntheticStreamGenerator generator(MakeTrafficSchema(session.symbols()),
                                       options);
    return generator.GenerateWindow(items);
  }
};

TEST_F(SessionTest, CreateRejectsBadInput) {
  auto handler = [](const SessionEvent&) {};
  EXPECT_FALSE(
      StreamSession::Create("", TrafficOptions(100), handler).ok());

  SessionOptions bad_program = TrafficOptions(100);
  bad_program.program_text = "this is not asp ((";
  EXPECT_FALSE(StreamSession::Create("s", bad_program, handler).ok());

  SessionOptions drop_oldest = TrafficOptions(100);
  drop_oldest.admission = BackpressurePolicy::kDropOldest;
  auto session = StreamSession::Create("s", drop_oldest, handler);
  ASSERT_FALSE(session.ok());
  EXPECT_EQ(session.status().code(), StatusCode::kInvalidArgument);

  SessionOptions bad_engine = TrafficOptions(100);
  bad_engine.engine.pipeline.async = true;
  bad_engine.engine.pipeline.max_inflight_windows = 0;
  EXPECT_FALSE(StreamSession::Create("s", bad_engine, handler).ok());
}

TEST_F(SessionTest, FlushIsALiveBarrier) {
  uint64_t results = 0;
  auto session = StreamSession::Create(
      "flushy", TrafficOptions(300), [&](const SessionEvent& event) {
        if (event.event.kind == EmissionEvent::Kind::kResult) ++results;
      });
  ASSERT_TRUE(session.ok()) << session.status();

  ASSERT_TRUE((*session)->Push(MakeStream(**session, 900)).ok());
  ASSERT_TRUE((*session)->Flush().ok());
  // 900 items / 300 window: two full windows + the flushed partial... the
  // stream is exactly 3 windows, all delivered before Flush returned.
  EXPECT_EQ(results, 3u);
  EXPECT_EQ((*session)->state(), SessionState::kRunning);

  // The session stays usable after a flush.
  ASSERT_TRUE((*session)->Push(MakeStream(**session, 300, 12)).ok());
  ASSERT_TRUE((*session)->Flush().ok());
  EXPECT_EQ(results, 4u);

  const SessionStats stats = (*session)->stats();
  EXPECT_EQ(stats.pushed_batches, 2u);
  EXPECT_EQ(stats.pushed_items, 1200u);
  EXPECT_EQ(stats.result_events, 4u);
  EXPECT_EQ(stats.engine.delivered_windows, 4u);
  EXPECT_EQ(stats.engine.completeness(), 1.0);
  (*session)->Close();
}

TEST_F(SessionTest, CloseDrainsInFlightWindows) {
  SessionOptions options = TrafficOptions(400);
  options.engine.pipeline.async = true;
  options.engine.pipeline.max_inflight_windows = 4;
  uint64_t results = 0;
  auto session = StreamSession::Create(
      "drainy", options, [&](const SessionEvent& event) {
        if (event.event.kind == EmissionEvent::Kind::kResult) ++results;
      });
  ASSERT_TRUE(session.ok()) << session.status();

  // Queue six windows' worth and close immediately: every admitted batch
  // must still be windowed, reasoned, and delivered before kClosed.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE((*session)->Push(MakeStream(**session, 400, 20 + i)).ok());
  }
  (*session)->Close();
  EXPECT_EQ((*session)->state(), SessionState::kClosed);
  EXPECT_EQ(results, 6u);
  // Engine counters are gone after close (the engine is torn down); the
  // session's own delivery counters survive.
  EXPECT_EQ((*session)->stats().result_events, 6u);
}

TEST_F(SessionTest, PushAndFlushRefusedAfterClose) {
  auto session = StreamSession::Create("closed", TrafficOptions(100),
                                       [](const SessionEvent&) {});
  ASSERT_TRUE(session.ok()) << session.status();
  (*session)->Close();
  EXPECT_EQ((*session)->Push(MakeStream(**session, 10)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ((*session)->Flush().code(), StatusCode::kFailedPrecondition);
}

TEST_F(SessionTest, CloseIsIdempotentAndConcurrent) {
  auto session = StreamSession::Create("multi-close", TrafficOptions(200),
                                       [](const SessionEvent&) {});
  ASSERT_TRUE(session.ok()) << session.status();
  ASSERT_TRUE((*session)->Push(MakeStream(**session, 600)).ok());

  std::vector<std::thread> closers;
  for (int i = 0; i < 4; ++i) {
    closers.emplace_back([&session] { (*session)->Close(); });
  }
  for (std::thread& t : closers) t.join();
  EXPECT_EQ((*session)->state(), SessionState::kClosed);
  (*session)->Close();  // And once more, after the fact.
  EXPECT_EQ((*session)->state(), SessionState::kClosed);
}

// ---------------------------------------------------------------------------
// Server registry.
// ---------------------------------------------------------------------------

TEST(ServerTest, RegistryLifecycle) {
  ServerConfig server_config;
  server_config.max_sessions = 2;
  StreamServer server(server_config);
  SessionOptions options;
  options.program_text = "a(X) :- b(X).\n#input b/1.\n#show a/1.";
  options.engine.pipeline.window_size = 4;

  auto handler = [](const SessionEvent&) {};
  auto first = server.CreateSession("one", options, handler);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(server.num_sessions(), 1u);

  auto duplicate = server.CreateSession("one", options, handler);
  ASSERT_FALSE(duplicate.ok());
  EXPECT_EQ(duplicate.status().code(), StatusCode::kInvalidArgument);

  auto second = server.CreateSession("two", options, handler);
  ASSERT_TRUE(second.ok()) << second.status();
  auto third = server.CreateSession("three", options, handler);
  ASSERT_FALSE(third.ok());
  EXPECT_EQ(third.status().code(), StatusCode::kResourceExhausted);

  EXPECT_TRUE(server.FindSession("one").ok());
  EXPECT_EQ(server.FindSession("nope").status().code(),
            StatusCode::kNotFound);

  EXPECT_TRUE(server.CloseSession("one").ok());
  EXPECT_EQ((*first)->state(), SessionState::kClosed);
  EXPECT_EQ(server.CloseSession("one").code(), StatusCode::kNotFound);
  EXPECT_EQ(server.num_sessions(), 1u);

  server.CloseAll();
  EXPECT_EQ(server.num_sessions(), 0u);
  EXPECT_EQ((*second)->state(), SessionState::kClosed);
}

TEST(ServerTest, ValidateSessionOptionsTable) {
  struct Case {
    const char* name;
    void (*mutate)(SessionOptions&);
    const char* message;  // nullptr => valid.
  };
  const Case kCases[] = {
      {"defaults", [](SessionOptions&) {}, nullptr},
      {"weighted-async",
       [](SessionOptions& o) {
         o.engine.pipeline.async = true;
         o.engine.pipeline.max_inflight_windows = 2;
         o.weight = 4;
         o.max_inflight = 2;
         o.max_queued_windows = 8;
       },
       nullptr},
      {"drop-oldest-admission",
       [](SessionOptions& o) { o.admission = BackpressurePolicy::kDropOldest; },
       "session admission supports kBlock or kReject only"},
      {"zero-weight", [](SessionOptions& o) { o.weight = 0; },
       "session weight must be >= 1"},
      {"quota-without-async",
       [](SessionOptions& o) { o.max_queued_windows = 4; },
       "session max_queued_windows requires an async engine"},
      {"inflight-without-async",
       [](SessionOptions& o) { o.max_inflight = 2; },
       "session max_inflight requires an async engine"},
  };
  for (const Case& c : kCases) {
    SCOPED_TRACE(c.name);
    SessionOptions options;
    options.program_text = "a(X) :- b(X).\n#input b/1.";
    c.mutate(options);
    const Status status = ValidateSessionOptions(options);
    if (c.message == nullptr) {
      EXPECT_TRUE(status.ok()) << status;
    } else {
      EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
      EXPECT_NE(status.ToString().find(c.message), std::string::npos)
          << status;
    }
  }
}

TEST(ServerTest, ValidateServerConfigTable) {
  ServerConfig valid;
  EXPECT_TRUE(ValidateServerConfig(valid).ok());
  ServerConfig no_pool;
  no_pool.shared_pool_threads = 0;  // Dedicated-thread sessions: allowed.
  EXPECT_TRUE(ValidateServerConfig(no_pool).ok());

  ServerConfig zero_sessions;
  zero_sessions.max_sessions = 0;
  const Status status = ValidateServerConfig(zero_sessions);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.ToString().find("max_sessions must be >= 1"),
            std::string::npos)
      << status;
}

// ---------------------------------------------------------------------------
// Isolation property: concurrent multi-tenant emission streams are
// byte-identical to standalone engines over the same batches, across
// randomized push interleavings; saturating one session's admission
// budget never degrades another session's completeness.
// ---------------------------------------------------------------------------

struct TenantSpec {
  const char* name;
  TrafficProgramVariant variant;
  size_t window_size;
  bool async;
  size_t window_slide;
  bool reuse_grounding;
  uint64_t stream_seed;
};

std::string RenderEmission(const EmissionEvent& event,
                           const SymbolTable& symbols) {
  std::string out = "#" + std::to_string(event.sequence);
  switch (event.kind) {
    case EmissionEvent::Kind::kResult:
      out += " result items=" + std::to_string(event.window->items.size());
      for (const GroundAnswer& answer : event.result->answers) {
        out += "\n  " + AnswerToString(answer, symbols);
      }
      break;
    case EmissionEvent::Kind::kError:
      out += " error " + event.status.ToString();
      break;
    case EmissionEvent::Kind::kShed:
      out += " shed items=" + std::to_string(event.window->items.size());
      break;
  }
  out += "\n";
  return out;
}

SessionOptions TenantOptions(const TenantSpec& spec) {
  SessionOptions options;
  options.program_text =
      TrafficProgramText(spec.variant, /*with_show=*/true);
  options.engine.pipeline.window_size = spec.window_size;
  options.engine.pipeline.window_slide = spec.window_slide;
  options.engine.pipeline.async = spec.async;
  options.engine.pipeline.reuse_grounding = spec.reuse_grounding;
  return options;
}

// The standalone oracle: parse the same program text into a fresh symbol
// table, generate the same deterministic batches, drive a bare
// StreamEngine, and render the transcript the same way. Symbol ids may
// differ between tables, but the rendered bytes must not.
std::string OracleTranscript(const TenantSpec& spec, size_t batches,
                             size_t batch_items) {
  SymbolTablePtr symbols = MakeSymbolTable();
  Parser parser(symbols);
  StatusOr<Program> program =
      parser.ParseProgram(TrafficProgramText(spec.variant, true));
  EXPECT_TRUE(program.ok()) << program.status();

  std::string transcript;
  const SessionOptions options = TenantOptions(spec);
  auto engine = StreamEngine::Create(
      &*program, options.engine, [&](EmissionEvent& event) {
        transcript += RenderEmission(event, *symbols);
      });
  EXPECT_TRUE(engine.ok()) << engine.status();

  GeneratorOptions generator_options;
  generator_options.seed = spec.stream_seed;
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols),
                                     generator_options);
  for (size_t i = 0; i < batches; ++i) {
    (*engine)->PushBatch(generator.GenerateWindow(batch_items));
  }
  (*engine)->Flush();
  return transcript;
}

TEST(IsolationTest, ConcurrentSessionsMatchStandaloneEngines) {
  const TenantSpec kTenants[] = {
      {"tumbling-sync", TrafficProgramVariant::kP, 500, false, 0, false, 101},
      {"async", TrafficProgramVariant::kPPrime, 500, true, 0, false, 202},
      {"sliding-reuse", TrafficProgramVariant::kPPrime, 600, false, 200, true,
       303},
  };
  constexpr size_t kBatches = 8;
  constexpr size_t kBatchItems = 250;

  for (uint64_t round_seed : {1u, 2u, 3u}) {
    StreamServer server;
    struct Tenant {
      std::shared_ptr<StreamSession> session;
      std::string transcript;
      std::vector<std::vector<Triple>> batches;
    };
    std::vector<std::unique_ptr<Tenant>> tenants;

    for (const TenantSpec& spec : kTenants) {
      auto tenant = std::make_unique<Tenant>();
      Tenant* raw = tenant.get();
      auto session = server.CreateSession(
          spec.name, TenantOptions(spec), [raw](const SessionEvent& event) {
            raw->transcript += RenderEmission(event.event, event.symbols);
          });
      ASSERT_TRUE(session.ok()) << spec.name << ": " << session.status();
      tenant->session = *session;

      // The same deterministic batches the oracle will regenerate.
      GeneratorOptions generator_options;
      generator_options.seed = spec.stream_seed;
      SyntheticStreamGenerator generator(
          MakeTrafficSchema(tenant->session->symbols()), generator_options);
      for (size_t i = 0; i < kBatches; ++i) {
        tenant->batches.push_back(generator.GenerateWindow(kBatchItems));
      }
      tenants.push_back(std::move(tenant));
    }

    // One pusher thread per tenant, with seeded random jitter so every
    // round interleaves the sessions' pushes differently.
    std::vector<std::thread> pushers;
    for (size_t t = 0; t < tenants.size(); ++t) {
      Tenant* tenant = tenants[t].get();
      const uint64_t jitter_seed = round_seed * 97 + t;
      pushers.emplace_back([tenant, jitter_seed] {
        std::mt19937 rng(jitter_seed);
        for (const std::vector<Triple>& batch : tenant->batches) {
          for (int spin = rng() % 5; spin > 0; --spin) {
            std::this_thread::yield();
          }
          Status status = tenant->session->Push(batch);
          EXPECT_TRUE(status.ok()) << status;
        }
        EXPECT_TRUE(tenant->session->Flush().ok());
      });
    }
    for (std::thread& pusher : pushers) pusher.join();
    // Snapshot while running: engine counters vanish when a session
    // closes (the engine is torn down).
    std::vector<SessionStats> snapshots;
    for (const std::unique_ptr<Tenant>& tenant : tenants) {
      snapshots.push_back(tenant->session->stats());
    }
    server.CloseAll();

    for (size_t t = 0; t < tenants.size(); ++t) {
      SCOPED_TRACE(std::string(kTenants[t].name) + " round " +
                   std::to_string(round_seed));
      const std::string oracle =
          OracleTranscript(kTenants[t], kBatches, kBatchItems);
      EXPECT_FALSE(oracle.empty());
      EXPECT_EQ(tenants[t]->transcript, oracle);
      EXPECT_EQ(snapshots[t].engine.completeness(), 1.0);
      EXPECT_EQ(snapshots[t].rejected_batches, 0u);
    }
  }
}

TEST(IsolationTest, SaturatingOneSessionNeverDegradesAnother) {
  StreamServer server;

  // The greedy tenant: a one-batch admission budget with kReject, pushed
  // far faster than its pump can reason 400-item windows.
  TenantSpec greedy_spec = {"greedy", TrafficProgramVariant::kPPrime, 400,
                            false, 0, false, 404};
  SessionOptions greedy_options = TenantOptions(greedy_spec);
  greedy_options.ingest_queue_capacity = 1;
  greedy_options.admission = BackpressurePolicy::kReject;
  auto greedy = server.CreateSession("greedy", greedy_options,
                                     [](const SessionEvent&) {});
  ASSERT_TRUE(greedy.ok()) << greedy.status();

  // The steady tenant: modest load, lossless, its own engine and pump.
  TenantSpec steady_spec = {"steady", TrafficProgramVariant::kP, 500, false,
                            0, false, 505};
  std::string steady_transcript;
  auto steady = server.CreateSession(
      "steady", TenantOptions(steady_spec), [&](const SessionEvent& event) {
        steady_transcript += RenderEmission(event.event, event.symbols);
      });
  ASSERT_TRUE(steady.ok()) << steady.status();

  constexpr size_t kSteadyBatches = 6;
  constexpr size_t kSteadyItems = 250;
  std::thread steady_pusher([&] {
    GeneratorOptions generator_options;
    generator_options.seed = steady_spec.stream_seed;
    SyntheticStreamGenerator generator(
        MakeTrafficSchema((*steady)->symbols()), generator_options);
    for (size_t i = 0; i < kSteadyBatches; ++i) {
      Status status = (*steady)->Push(generator.GenerateWindow(kSteadyItems));
      EXPECT_TRUE(status.ok()) << status;
    }
    EXPECT_TRUE((*steady)->Flush().ok());
  });

  // Hammer the greedy session until its admission budget refuses pushes
  // (bounded — 400 window-sized batches vastly outrun one pump).
  GeneratorOptions generator_options;
  generator_options.seed = greedy_spec.stream_seed;
  SyntheticStreamGenerator generator(MakeTrafficSchema((*greedy)->symbols()),
                                     generator_options);
  uint64_t rejected = 0;
  for (int i = 0; i < 400 && rejected < 8; ++i) {
    Status status = (*greedy)->Push(generator.GenerateWindow(400));
    if (!status.ok()) {
      EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  EXPECT_GT(rejected, 0u) << "greedy session never saturated";

  steady_pusher.join();
  // Snapshot before closing — engine counters are torn down with the
  // engine.
  const SessionStats greedy_stats = (*greedy)->stats();
  const SessionStats steady_stats = (*steady)->stats();
  server.CloseAll();

  EXPECT_EQ(greedy_stats.rejected_batches, rejected);
  EXPECT_GT(greedy_stats.rejected_items, 0u);

  // The steady tenant saw full-fidelity service: nothing rejected,
  // nothing shed, emissions byte-identical to a standalone engine.
  EXPECT_EQ(steady_stats.rejected_batches, 0u);
  EXPECT_EQ(steady_stats.shed_events, 0u);
  EXPECT_EQ(steady_stats.engine.completeness(), 1.0);
  EXPECT_EQ(steady_transcript,
            OracleTranscript(steady_spec, kSteadyBatches, kSteadyItems));
}

// ---------------------------------------------------------------------------
// Shared reasoner pool: pooled sessions stay byte-identical to standalone
// oracles, a saturating weight-1 tenant cannot starve a weight-4 tenant,
// per-session quotas shed with full accounting, and 64 sessions cost
// O(pool + 1) threads instead of O(sessions).
// ---------------------------------------------------------------------------

size_t CurrentThreadCount() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("Threads:", 0) == 0) {
      return static_cast<size_t>(std::stoul(line.substr(8)));
    }
  }
  return 0;
}

TEST(SharedPoolServerTest, PooledSessionsMatchStandaloneOracles) {
  ServerConfig config;
  config.shared_pool_threads = 4;
  StreamServer server(config);
  ASSERT_NE(server.shared_pool(), nullptr);

  const TenantSpec kTenants[] = {
      {"pool-a", TrafficProgramVariant::kPPrime, 500, true, 0, false, 606},
      {"pool-b", TrafficProgramVariant::kP, 400, true, 0, false, 707},
      {"pool-c", TrafficProgramVariant::kPPrime, 600, true, 0, true, 808},
  };
  const size_t kWeights[] = {1, 4, 2};
  constexpr size_t kBatches = 6;
  constexpr size_t kBatchItems = 250;

  struct Tenant {
    std::shared_ptr<StreamSession> session;
    std::string transcript;
  };
  std::vector<std::unique_ptr<Tenant>> tenants;
  for (size_t t = 0; t < 3; ++t) {
    auto tenant = std::make_unique<Tenant>();
    Tenant* raw = tenant.get();
    SessionOptions options = TenantOptions(kTenants[t]);
    options.weight = kWeights[t];
    auto session = server.CreateSession(
        kTenants[t].name, options, [raw](const SessionEvent& event) {
          raw->transcript += RenderEmission(event.event, event.symbols);
        });
    ASSERT_TRUE(session.ok()) << kTenants[t].name << ": " << session.status();
    tenant->session = *session;
    tenants.push_back(std::move(tenant));
  }

  std::vector<std::thread> pushers;
  for (size_t t = 0; t < tenants.size(); ++t) {
    Tenant* tenant = tenants[t].get();
    const TenantSpec& spec = kTenants[t];
    pushers.emplace_back([tenant, &spec] {
      GeneratorOptions generator_options;
      generator_options.seed = spec.stream_seed;
      SyntheticStreamGenerator generator(
          MakeTrafficSchema(tenant->session->symbols()), generator_options);
      for (size_t i = 0; i < kBatches; ++i) {
        Status status =
            tenant->session->Push(generator.GenerateWindow(kBatchItems));
        EXPECT_TRUE(status.ok()) << status;
      }
      EXPECT_TRUE(tenant->session->Flush().ok());
    });
  }
  for (std::thread& pusher : pushers) pusher.join();

  std::vector<SessionStats> snapshots;
  for (const auto& tenant : tenants) {
    snapshots.push_back(tenant->session->stats());
  }
  server.CloseAll();

  for (size_t t = 0; t < tenants.size(); ++t) {
    SCOPED_TRACE(kTenants[t].name);
    const std::string oracle =
        OracleTranscript(kTenants[t], kBatches, kBatchItems);
    EXPECT_FALSE(oracle.empty());
    EXPECT_EQ(tenants[t]->transcript, oracle);
    EXPECT_EQ(snapshots[t].engine.completeness(), 1.0);
    EXPECT_EQ(snapshots[t].rejected_batches, 0u);
    EXPECT_EQ(snapshots[t].shed_events, 0u);
  }
}

TEST(SharedPoolServerTest, SaturatingTenantCannotStarveWeightedTenant) {
  // Two workers, contended: greedy (weight 1) keeps a 32-window backlog
  // while steady (weight 4) runs Push+Flush rounds. DRR must keep
  // steady's per-window latency bounded and its stream lossless.
  ServerConfig config;
  config.shared_pool_threads = 2;
  StreamServer server(config);

  TenantSpec greedy_spec = {"greedy", TrafficProgramVariant::kPPrime, 400,
                            true,     0,
                            false,    404};
  SessionOptions greedy_options = TenantOptions(greedy_spec);
  greedy_options.engine.pipeline.max_inflight_windows = 32;
  greedy_options.weight = 1;
  greedy_options.max_inflight = 1;
  auto greedy = server.CreateSession("greedy", greedy_options,
                                     [](const SessionEvent&) {});
  ASSERT_TRUE(greedy.ok()) << greedy.status();

  TenantSpec steady_spec = {"steady", TrafficProgramVariant::kP, 300, true, 0,
                            false,    505};
  SessionOptions steady_options = TenantOptions(steady_spec);
  steady_options.weight = 4;
  std::string steady_transcript;
  auto steady = server.CreateSession(
      "steady", steady_options, [&](const SessionEvent& event) {
        steady_transcript += RenderEmission(event.event, event.symbols);
      });
  ASSERT_TRUE(steady.ok()) << steady.status();

  std::atomic<bool> stop{false};
  std::thread greedy_pusher([&] {
    GeneratorOptions generator_options;
    generator_options.seed = greedy_spec.stream_seed;
    SyntheticStreamGenerator generator(
        MakeTrafficSchema((*greedy)->symbols()), generator_options);
    while (!stop.load(std::memory_order_acquire)) {
      // kBlock admission: backpressures this thread once the 32-window
      // backlog is full — exactly the saturation we want.
      Status status = (*greedy)->Push(generator.GenerateWindow(400));
      if (!status.ok()) break;
    }
  });

  constexpr size_t kSteadyRounds = 12;
  std::vector<double> latencies_ms;
  {
    GeneratorOptions generator_options;
    generator_options.seed = steady_spec.stream_seed;
    SyntheticStreamGenerator generator(
        MakeTrafficSchema((*steady)->symbols()), generator_options);
    for (size_t i = 0; i < kSteadyRounds; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      ASSERT_TRUE((*steady)->Push(generator.GenerateWindow(300)).ok());
      ASSERT_TRUE((*steady)->Flush().ok());
      latencies_ms.push_back(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - t0)
              .count());
    }
  }

  // Snapshot while the greedy tenant is still hammering: it must have a
  // real backlog (we were genuinely contended) yet never be starved.
  const SessionStats greedy_mid = (*greedy)->stats();
  stop.store(true, std::memory_order_release);
  greedy_pusher.join();
  const SessionStats steady_stats = (*steady)->stats();
  server.CloseAll();

  EXPECT_GT(greedy_mid.engine.reasoning.enqueued_windows,
            greedy_mid.engine.delivered_windows)
      << "greedy tenant never built a backlog — the pool was not contended";
  EXPECT_GT(greedy_mid.engine.delivered_windows, 0u)
      << "weight-1 tenant was fully starved";

  // p99 (== max over 12 rounds) stays under a deliberately generous
  // bound that still catches actual starvation (an unweighted queue
  // would park steady behind ~32 greedy windows per round).
  const double worst = *std::max_element(latencies_ms.begin(),
                                         latencies_ms.end());
  EXPECT_LT(worst, 15000.0) << "steady tenant p99 unbounded under load";

  EXPECT_EQ(steady_stats.rejected_batches, 0u);
  EXPECT_EQ(steady_stats.shed_events, 0u);
  EXPECT_EQ(steady_stats.engine.completeness(), 1.0);
  EXPECT_EQ(steady_transcript,
            OracleTranscript(steady_spec, kSteadyRounds, 300));
}

TEST(SharedPoolServerTest, SixtyFourSessionsCostPoolPlusLoopThreads) {
  ServerConfig config;
  config.shared_pool_threads = 2;
  config.max_sessions = 128;
  StreamServer server(config);

  SessionOptions options;
  options.program_text = "a(X) :- b(X).\n#input b/1.\n#show a/1.";
  options.engine.pipeline.window_size = 4;
  options.engine.pipeline.async = true;
  options.engine.pipeline.max_inflight_windows = 2;

  const size_t before = CurrentThreadCount();
  ASSERT_GT(before, 0u) << "/proc/self/status not readable";
  std::atomic<uint64_t> results{0};
  std::vector<std::shared_ptr<StreamSession>> sessions;
  for (int i = 0; i < 64; ++i) {
    auto session = server.CreateSession(
        "tenant-" + std::to_string(i), options,
        [&results](const SessionEvent& event) {
          if (event.event.kind == EmissionEvent::Kind::kResult) ++results;
        });
    ASSERT_TRUE(session.ok()) << session.status();
    sessions.push_back(*session);
  }
  const size_t after = CurrentThreadCount();

  // The whole point of the shared pool: 64 pooled sessions spawn zero
  // threads (the old design cost ~3 threads per async session). Allow a
  // little slack for runtime/test-framework threads.
  EXPECT_LE(after, before + 2)
      << "64 sessions grew the thread count from " << before << " to "
      << after << " — session count is leaking threads again";

  // And they all actually reason: one window through each.
  for (auto& session : sessions) {
    std::vector<Triple> batch;
    for (int i = 0; i < 4; ++i) {
      auto triple =
          ParseTripleLine("b x" + std::to_string(i), session->symbols());
      ASSERT_TRUE(triple.ok()) << triple.status();
      batch.push_back(*triple);
    }
    ASSERT_TRUE(session->Push(std::move(batch)).ok());
    ASSERT_TRUE(session->Flush().ok());
  }
  EXPECT_EQ(results.load(), 64u);
  server.CloseAll();
}

TEST_F(SessionTest, QuotaShedsWindowsBeyondMaxQueuedAndAccountsThem) {
  // Pooled quota semantics at the session API: max_queued_windows=1
  // sheds any window that closes while another is still undelivered.
  SessionOptions options = TrafficOptions(200);
  options.engine.pipeline.async = true;
  options.engine.pipeline.max_inflight_windows = 8;
  options.max_queued_windows = 1;

  uint64_t result_events = 0;
  uint64_t shed_events = 0;
  auto session = StreamSession::Create(
      "quota", options, [&](const SessionEvent& event) {
        if (event.event.kind == EmissionEvent::Kind::kResult) ++result_events;
        if (event.event.kind == EmissionEvent::Kind::kShed) ++shed_events;
      });
  ASSERT_TRUE(session.ok()) << session.status();

  constexpr size_t kWindows = 16;
  for (size_t i = 0; i < kWindows; ++i) {
    ASSERT_TRUE((*session)->Push(MakeStream(**session, 200, 40 + i)).ok());
  }
  ASSERT_TRUE((*session)->Flush().ok());
  const SessionStats stats = (*session)->stats();
  (*session)->Close();

  // Conservation: every window is either delivered or shed-with-receipt —
  // the quota degrades gracefully, it never loses windows silently.
  EXPECT_EQ(result_events + shed_events, kWindows);
  EXPECT_GT(shed_events, 0u) << "quota never triggered";
  EXPECT_EQ(stats.shed_events, shed_events);
  EXPECT_EQ(stats.result_events, result_events);
  EXPECT_EQ(stats.engine.delivered_windows, result_events);
  EXPECT_LT(stats.engine.completeness(), 1.0);
  EXPECT_GT(stats.engine.completeness(), 0.0);
}

// ---------------------------------------------------------------------------
// Transports: the in-proc connection and a TCP loopback smoke, both
// speaking the wire protocol end to end.
// ---------------------------------------------------------------------------

/// Collects server→client payloads and lets the test await replies while
/// counting the subscription events that interleave before them.
class PayloadCollector {
 public:
  void Handle(std::string payload) {
    std::lock_guard<std::mutex> lock(mutex_);
    payloads_.push_back(std::move(payload));
    cv_.notify_all();
  }

  /// Pops payloads until a reply ("ok ..."/"error ...") surfaces,
  /// counting "event <session> result ..." payloads along the way.
  std::string AwaitReply() {
    std::unique_lock<std::mutex> lock(mutex_);
    while (true) {
      while (payloads_.empty()) {
        if (cv_.wait_for(lock, std::chrono::seconds(30)) ==
            std::cv_status::timeout) {
          ADD_FAILURE() << "timed out waiting for a reply";
          return "";
        }
      }
      std::string payload = std::move(payloads_.front());
      payloads_.pop_front();
      if (payload.rfind("event ", 0) == 0) {
        if (payload.find(" result ") != std::string::npos) ++result_events_;
        continue;
      }
      return payload;
    }
  }

  uint64_t result_events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return result_events_;
  }

 private:
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::deque<std::string> payloads_;
  uint64_t result_events_ = 0;
};

constexpr const char* kTinyProgram =
    "a(X) :- b(X).\n#input b/1.\n#show a/1.";

TEST(TransportTest, InProcConnectionSpeaksTheProtocol) {
  StreamServer server;
  std::unique_ptr<SessionTransport> connection = server.Connect();
  PayloadCollector collector;
  connection->Receive(
      [&collector](std::string payload) { collector.Handle(std::move(payload)); });

  ASSERT_TRUE(connection->Send("ping").ok());
  EXPECT_EQ(collector.AwaitReply(), "ok ping");

  ASSERT_TRUE(
      connection->Send(std::string("open tiny window=4\n") + kTinyProgram)
          .ok());
  EXPECT_EQ(collector.AwaitReply(), "ok open tiny v=1");
  EXPECT_EQ(server.num_sessions(), 1u);

  // Unknown session and malformed requests come back as error replies
  // with machine-readable codes.
  ASSERT_TRUE(connection->Send("push nope\nb x1").ok());
  EXPECT_EQ(
      collector.AwaitReply().rfind("error push nope code=unknown_session", 0),
      0u);
  ASSERT_TRUE(connection->Send("warble").ok());
  EXPECT_EQ(collector.AwaitReply().rfind("error", 0), 0u);

  // Two tumbling windows of four facts each.
  for (int window = 0; window < 2; ++window) {
    std::string push = "push tiny";
    for (int i = 0; i < 4; ++i) {
      push += "\nb x" + std::to_string(window * 4 + i);
    }
    ASSERT_TRUE(connection->Send(push).ok());
    EXPECT_EQ(collector.AwaitReply(), "ok push tiny");
  }
  ASSERT_TRUE(connection->Send("flush tiny").ok());
  EXPECT_EQ(collector.AwaitReply(), "ok flush tiny");
  EXPECT_EQ(collector.result_events(), 2u);

  ASSERT_TRUE(connection->Send("stats tiny").ok());
  const std::string stats = collector.AwaitReply();
  EXPECT_EQ(stats.rfind("ok stats tiny\nstate=running", 0), 0u) << stats;
  EXPECT_NE(stats.find("\ndelivered_windows=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\ndelivered_answers=2"), std::string::npos) << stats;
  EXPECT_NE(stats.find("\ncompleteness=1"), std::string::npos) << stats;

  ASSERT_TRUE(connection->Send("close tiny").ok());
  EXPECT_EQ(collector.AwaitReply(), "ok close tiny");
  EXPECT_EQ(server.num_sessions(), 0u);

  connection->Close();
  EXPECT_FALSE(connection->Send("ping").ok());
}

TEST(TransportTest, UnknownProtocolVersionIsRejectedCleanly) {
  StreamServer server;
  std::unique_ptr<SessionTransport> connection = server.Connect();
  PayloadCollector collector;
  connection->Receive(
      [&collector](std::string payload) { collector.Handle(std::move(payload)); });

  // A v=2 client is refused before any session state is created...
  ASSERT_TRUE(
      connection->Send(std::string("open vbad window=4 v=2\n") + kTinyProgram)
          .ok());
  const std::string reply = collector.AwaitReply();
  EXPECT_EQ(reply.rfind("error open vbad code=unsupported_version", 0), 0u)
      << reply;
  EXPECT_NE(reply.find("this server speaks v=1"), std::string::npos) << reply;
  EXPECT_EQ(server.num_sessions(), 0u);

  // ...and the connection survives to open a correctly versioned session.
  ASSERT_TRUE(
      connection->Send(std::string("open vgood window=4 v=1\n") + kTinyProgram)
          .ok());
  EXPECT_EQ(collector.AwaitReply(), "ok open vgood v=1");
  EXPECT_EQ(server.num_sessions(), 1u);
  connection->Close();
}

TEST(TransportTest, DroppingTheConnectionClosesItsSessions) {
  StreamServer server;
  std::unique_ptr<SessionTransport> connection = server.Connect();
  PayloadCollector collector;
  connection->Receive(
      [&collector](std::string payload) { collector.Handle(std::move(payload)); });
  ASSERT_TRUE(
      connection->Send(std::string("open orphan window=4\n") + kTinyProgram)
          .ok());
  EXPECT_EQ(collector.AwaitReply(), "ok open orphan v=1");
  ASSERT_TRUE(connection->Send("push orphan\nb x1\nb x2").ok());
  EXPECT_EQ(collector.AwaitReply(), "ok push orphan");
  EXPECT_EQ(server.num_sessions(), 1u);

  // No explicit close: dropping the connection drains and closes the
  // sessions it opened.
  connection->Close();
  EXPECT_EQ(server.num_sessions(), 0u);
}

TEST(TransportTest, TcpLoopbackSmoke) {
  StreamServer server;
  TcpServer tcp(&server, TcpServer::Options{});
  ASSERT_TRUE(tcp.Start().ok());
  ASSERT_GT(tcp.port(), 0);

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(tcp.port());
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  ASSERT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);

  FrameDecoder decoder;
  uint64_t result_events = 0;
  auto send_payload = [fd](std::string_view payload) {
    const std::string frame = EncodeFrame(payload);
    size_t sent = 0;
    while (sent < frame.size()) {
      const ssize_t n = send(fd, frame.data() + sent, frame.size() - sent, 0);
      ASSERT_GT(n, 0);
      sent += static_cast<size_t>(n);
    }
  };
  auto await_reply = [&]() -> std::string {
    std::string payload;
    while (true) {
      while (decoder.Next(&payload)) {
        if (payload.rfind("event ", 0) == 0) {
          if (payload.find(" result ") != std::string::npos) ++result_events;
          continue;
        }
        return payload;
      }
      char buffer[4096];
      const ssize_t n = recv(fd, buffer, sizeof(buffer), 0);
      if (n <= 0) {
        ADD_FAILURE() << "server closed the connection";
        return "";
      }
      decoder.Feed(std::string_view(buffer, static_cast<size_t>(n)));
    }
  };

  send_payload("ping");
  EXPECT_EQ(await_reply(), "ok ping");

  send_payload(std::string("open tcp window=3\n") + kTinyProgram);
  EXPECT_EQ(await_reply(), "ok open tcp v=1");

  send_payload("push tcp\nb x1\nb x2\nb x3");
  EXPECT_EQ(await_reply(), "ok push tcp");
  send_payload("flush tcp");
  EXPECT_EQ(await_reply(), "ok flush tcp");
  EXPECT_EQ(result_events, 1u);

  send_payload("stats tcp");
  const std::string stats = await_reply();
  EXPECT_NE(stats.find("\ndelivered_answers=1"), std::string::npos) << stats;

  send_payload("close tcp");
  EXPECT_EQ(await_reply(), "ok close tcp");

  close(fd);
  tcp.Stop();
  EXPECT_EQ(server.num_sessions(), 0u);
}

}  // namespace
}  // namespace streamasp
