// End-to-end pipeline tests mirroring the paper's evaluation setup (§IV)
// at test scale: synthetic streams, both programs P and P', reasoners R,
// PR_Dep and PR_Ran, accuracy bookkeeping.

#include <vector>

#include <gtest/gtest.h>

#include "depgraph/decomposition.h"
#include "stream/generator.h"
#include "stream/query_processor.h"
#include "streamrule/accuracy.h"
#include "streamrule/parallel_reasoner.h"
#include "streamrule/random_partitioner.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

struct PipelineCase {
  TrafficProgramVariant variant;
  GeneratorProfile profile;
  size_t window_size;
  uint64_t seed;
};

class PipelineTest : public ::testing::TestWithParam<PipelineCase> {
 protected:
  PipelineTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
};

TEST_P(PipelineTest, DependencyPartitioningPreservesAnswers) {
  const PipelineCase& param = GetParam();
  StatusOr<Program> program =
      MakeTrafficProgram(symbols_, param.variant, /*with_show=*/false);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  ASSERT_TRUE(graph.ok());
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(plan.ok());

  GeneratorOptions gen_options;
  gen_options.seed = param.seed;
  gen_options.profile = param.profile;
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_),
                                     gen_options);
  const TripleWindow window =
      generator.GenerateTripleWindow(param.window_size);

  Reasoner r(&*program);
  ParallelReasoner pr(&*program, *plan);
  StatusOr<ReasonerResult> whole = r.Process(window);
  ASSERT_TRUE(whole.ok()) << whole.status();
  StatusOr<ParallelReasonerResult> split = pr.Process(window);
  ASSERT_TRUE(split.ok()) << split.status();

  // The headline property: dependency-aware partitioning loses nothing.
  EXPECT_DOUBLE_EQ(MeanAccuracy(split->answers, whole->answers), 1.0);

  // For these stratified programs both reasoners are deterministic:
  // exactly one answer each, and they are equal as sets.
  ASSERT_EQ(whole->answers.size(), 1u);
  ASSERT_EQ(split->answers.size(), 1u);
  EXPECT_TRUE(AnswersEqual(split->answers[0], whole->answers[0]));
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, PipelineTest,
    ::testing::Values(
        PipelineCase{TrafficProgramVariant::kP, GeneratorProfile::kEventRich,
                     2000, 1},
        PipelineCase{TrafficProgramVariant::kP, GeneratorProfile::kEventRich,
                     5000, 2},
        PipelineCase{TrafficProgramVariant::kP,
                     GeneratorProfile::kPaperUniform, 3000, 3},
        PipelineCase{TrafficProgramVariant::kPPrime,
                     GeneratorProfile::kEventRich, 2000, 4},
        PipelineCase{TrafficProgramVariant::kPPrime,
                     GeneratorProfile::kEventRich, 5000, 5},
        PipelineCase{TrafficProgramVariant::kPPrime,
                     GeneratorProfile::kPaperUniform, 3000, 6}));

class IntegrationTest : public ::testing::Test {
 protected:
  IntegrationTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
};

TEST_F(IntegrationTest, RandomPartitioningLosesAccuracyOnEventRichData) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(plan.ok());

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
  const TripleWindow window = generator.GenerateTripleWindow(8000);

  Reasoner r(&*program);
  ParallelReasoner pr(&*program, *plan);
  StatusOr<ReasonerResult> reference = r.Process(window);
  ASSERT_TRUE(reference.ok());
  ASSERT_FALSE(reference->answers.empty());
  ASSERT_FALSE(reference->answers[0].empty())
      << "event-rich data must derive events for this test to bite";

  StatusOr<ParallelReasonerResult> dep = pr.Process(window);
  ASSERT_TRUE(dep.ok());
  EXPECT_DOUBLE_EQ(MeanAccuracy(dep->answers, reference->answers), 1.0);

  RandomPartitioner random(4, 99);
  StatusOr<ParallelReasonerResult> ran =
      pr.ProcessPartitions(random.Partition(window.items));
  ASSERT_TRUE(ran.ok());
  EXPECT_LT(MeanAccuracy(ran->answers, reference->answers), 1.0)
      << "random partitioning should miss joined events on this workload";
}

TEST_F(IntegrationTest, StreamToReasonerLoopProcessesEveryWindow) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(plan.ok());
  ParallelReasoner pr(&*program, *plan);

  size_t windows_processed = 0;
  StreamQueryProcessor query(1500, [&](const TripleWindow& window) {
    StatusOr<ParallelReasonerResult> result = pr.Process(window);
    ASSERT_TRUE(result.ok()) << result.status();
    ++windows_processed;
  });
  for (const PredicateSignature& sig : program->input_predicates()) {
    query.RegisterPredicate(sig.name);
  }

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
  for (int i = 0; i < 3; ++i) {
    query.PushBatch(generator.GenerateWindow(1500));
  }
  query.Flush();
  EXPECT_EQ(windows_processed, 3u);
}

TEST_F(IntegrationTest, DuplicationInflatesPartitionItemsForPPrime) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kPPrime, false);
  ASSERT_TRUE(program.ok());
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program);
  StatusOr<PartitioningPlan> plan = DecomposeInputDependencyGraph(*graph);
  ASSERT_TRUE(plan.ok());
  ParallelReasoner pr(&*program, *plan);

  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
  const TripleWindow window = generator.GenerateTripleWindow(6000);
  StatusOr<ParallelReasonerResult> result = pr.Process(window);
  ASSERT_TRUE(result.ok());
  // car_number (≈1/6 of items) is duplicated: totals must exceed the
  // window size by roughly that share.
  EXPECT_GT(result->total_partition_items, window.size());
  const double overhead =
      static_cast<double>(result->total_partition_items) / window.size();
  EXPECT_NEAR(overhead, 1.0 + 1.0 / 6.0, 0.05);
}

TEST_F(IntegrationTest, SolverAgreesBetweenRawAndSimplifiedGrounding) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kPPrime, false);
  ASSERT_TRUE(program.ok());
  SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), {});
  const TripleWindow window = generator.GenerateTripleWindow(1000);

  ReasonerOptions raw;
  raw.grounding.simplify = false;
  Reasoner simplified(&*program);
  Reasoner unsimplified(&*program, raw);
  StatusOr<ReasonerResult> a = simplified.Process(window);
  StatusOr<ReasonerResult> b = unsimplified.Process(window);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->answers.size(), b->answers.size());
  for (size_t i = 0; i < a->answers.size(); ++i) {
    EXPECT_TRUE(AnswersEqual(a->answers[i], b->answers[i]));
  }
}

}  // namespace
}  // namespace streamasp
