#include <algorithm>
#include <thread>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "asp/atom.h"
#include "asp/literal.h"
#include "asp/symbol_table.h"
#include "asp/term.h"

namespace streamasp {
namespace {

// ----------------------------------------------------------- SymbolTable.

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  const SymbolId a = table.Intern("traffic_jam");
  const SymbolId b = table.Intern("traffic_jam");
  EXPECT_EQ(a, b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(SymbolTableTest, DistinctNamesDistinctIds) {
  SymbolTable table;
  EXPECT_NE(table.Intern("a"), table.Intern("b"));
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, NameOfRoundTrips) {
  SymbolTable table;
  const SymbolId id = table.Intern("car_fire");
  EXPECT_EQ(table.NameOf(id), "car_fire");
}

TEST(SymbolTableTest, LookupMissingReturnsInvalid) {
  SymbolTable table;
  EXPECT_EQ(table.Lookup("ghost"), kInvalidSymbol);
  table.Intern("ghost");
  EXPECT_NE(table.Lookup("ghost"), kInvalidSymbol);
}

TEST(SymbolTableTest, ConcurrentInternsAgree) {
  SymbolTable table;
  constexpr int kThreads = 8;
  constexpr int kNames = 200;
  std::vector<std::vector<SymbolId>> ids(kThreads,
                                         std::vector<SymbolId>(kNames));
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &ids, t] {
      for (int i = 0; i < kNames; ++i) {
        ids[t][i] = table.Intern("name_" + std::to_string(i));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(ids[t], ids[0]);
  }
  EXPECT_EQ(table.size(), static_cast<size_t>(kNames));
}

// ------------------------------------------------------------------ Term.

class TermTest : public ::testing::Test {
 protected:
  SymbolTablePtr symbols_ = MakeSymbolTable();
};

TEST_F(TermTest, IntegerBasics) {
  const Term t = Term::Integer(-5);
  EXPECT_TRUE(t.is_integer());
  EXPECT_EQ(t.integer_value(), -5);
  EXPECT_TRUE(t.IsGround());
  EXPECT_EQ(t.ToString(*symbols_), "-5");
}

TEST_F(TermTest, SymbolBasics) {
  const Term t = Term::Symbol(symbols_->Intern("newcastle"));
  EXPECT_TRUE(t.is_symbol());
  EXPECT_TRUE(t.IsGround());
  EXPECT_EQ(t.ToString(*symbols_), "newcastle");
}

TEST_F(TermTest, VariableIsNotGround) {
  const Term t = Term::Variable(symbols_->Intern("X"));
  EXPECT_TRUE(t.is_variable());
  EXPECT_FALSE(t.IsGround());
}

TEST_F(TermTest, FunctionTermNesting) {
  const Term inner = Term::Function(symbols_->Intern("pos"),
                                    {Term::Integer(1), Term::Integer(2)});
  const Term outer =
      Term::Function(symbols_->Intern("at"),
                     {Term::Symbol(symbols_->Intern("car1")), inner});
  EXPECT_TRUE(outer.is_function());
  EXPECT_TRUE(outer.IsGround());
  EXPECT_EQ(outer.ToString(*symbols_), "at(car1,pos(1,2))");
}

TEST_F(TermTest, FunctionWithVariableIsNotGround) {
  const Term t = Term::Function(
      symbols_->Intern("f"), {Term::Variable(symbols_->Intern("X"))});
  EXPECT_FALSE(t.IsGround());
}

TEST_F(TermTest, EqualityIsStructural) {
  const SymbolId f = symbols_->Intern("f");
  const Term a = Term::Function(f, {Term::Integer(1)});
  const Term b = Term::Function(f, {Term::Integer(1)});
  const Term c = Term::Function(f, {Term::Integer(2)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(a, Term::Integer(1));
}

TEST_F(TermTest, HashConsistentWithEquality) {
  const SymbolId f = symbols_->Intern("f");
  const Term a = Term::Function(f, {Term::Integer(1), Term::Integer(2)});
  const Term b = Term::Function(f, {Term::Integer(1), Term::Integer(2)});
  EXPECT_EQ(a.Hash(), b.Hash());
  std::unordered_set<Term, TermHash> set;
  set.insert(a);
  EXPECT_TRUE(set.count(b));
}

TEST_F(TermTest, TotalOrderIsStrict) {
  std::vector<Term> terms = {
      Term::Integer(3), Term::Integer(-1),
      Term::Symbol(symbols_->Intern("a")),
      Term::Variable(symbols_->Intern("X")),
      Term::Function(symbols_->Intern("f"), {Term::Integer(0)})};
  std::sort(terms.begin(), terms.end());
  for (size_t i = 0; i + 1 < terms.size(); ++i) {
    EXPECT_FALSE(terms[i + 1] < terms[i]);
  }
  // Irreflexive.
  for (const Term& t : terms) EXPECT_FALSE(t < t);
}

TEST_F(TermTest, CollectVariablesInOrder) {
  const Term t = Term::Function(
      symbols_->Intern("f"),
      {Term::Variable(symbols_->Intern("X")), Term::Integer(1),
       Term::Function(symbols_->Intern("g"),
                      {Term::Variable(symbols_->Intern("Y"))})});
  std::vector<SymbolId> vars;
  t.CollectVariables(&vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(symbols_->NameOf(vars[0]), "X");
  EXPECT_EQ(symbols_->NameOf(vars[1]), "Y");
}

// ------------------------------------------------------------------ Atom.

TEST_F(TermTest, AtomBasics) {
  const Atom atom(symbols_->Intern("average_speed"),
                  {Term::Symbol(symbols_->Intern("newcastle")),
                   Term::Integer(10)});
  EXPECT_EQ(atom.arity(), 2u);
  EXPECT_TRUE(atom.IsGround());
  EXPECT_EQ(atom.ToString(*symbols_), "average_speed(newcastle,10)");
  EXPECT_EQ(atom.signature().arity, 2u);
}

TEST_F(TermTest, ZeroArityAtom) {
  const Atom atom(symbols_->Intern("sunny"), {});
  EXPECT_EQ(atom.ToString(*symbols_), "sunny");
  EXPECT_TRUE(atom.IsGround());
}

TEST_F(TermTest, AtomEqualityAndHash) {
  const SymbolId p = symbols_->Intern("p");
  const Atom a(p, {Term::Integer(1)});
  const Atom b(p, {Term::Integer(1)});
  const Atom c(p, {Term::Integer(2)});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(AtomHash()(a), AtomHash()(b));
}

TEST_F(TermTest, PredicateSignatureDistinguishesArity) {
  const SymbolId p = symbols_->Intern("p");
  const PredicateSignature p1{p, 1};
  const PredicateSignature p2{p, 2};
  EXPECT_NE(p1, p2);
  EXPECT_LT(p1, p2);
  EXPECT_EQ(p1.ToString(*symbols_), "p/1");
}

// --------------------------------------------------------------- Literal.

TEST_F(TermTest, LiteralKinds) {
  const Atom atom(symbols_->Intern("p"), {Term::Integer(1)});
  const Literal pos = Literal::Positive(atom);
  const Literal neg = Literal::Negative(atom);
  const Literal cmp = Literal::Comparison(Term::Integer(1),
                                          ComparisonOp::kLess,
                                          Term::Integer(2));
  EXPECT_TRUE(pos.is_positive_atom());
  EXPECT_TRUE(neg.is_negative_atom());
  EXPECT_TRUE(cmp.is_comparison());
  EXPECT_TRUE(pos.is_atom());
  EXPECT_FALSE(cmp.is_atom());
  EXPECT_EQ(neg.ToString(*symbols_), "not p(1)");
  EXPECT_EQ(cmp.ToString(*symbols_), "1<2");
}

TEST_F(TermTest, LiteralEquality) {
  const Atom atom(symbols_->Intern("p"), {});
  EXPECT_EQ(Literal::Positive(atom), Literal::Positive(atom));
  EXPECT_NE(Literal::Positive(atom), Literal::Negative(atom));
}

struct ComparisonCase {
  ComparisonOp op;
  int64_t lhs;
  int64_t rhs;
  bool expected;
};

class ComparisonEvalTest : public ::testing::TestWithParam<ComparisonCase> {};

TEST_P(ComparisonEvalTest, IntegerComparison) {
  const ComparisonCase& c = GetParam();
  EXPECT_EQ(EvaluateComparison(c.op, Term::Integer(c.lhs),
                               Term::Integer(c.rhs)),
            c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    AllOperators, ComparisonEvalTest,
    ::testing::Values(
        ComparisonCase{ComparisonOp::kLess, 1, 2, true},
        ComparisonCase{ComparisonOp::kLess, 2, 2, false},
        ComparisonCase{ComparisonOp::kLessEqual, 2, 2, true},
        ComparisonCase{ComparisonOp::kLessEqual, 3, 2, false},
        ComparisonCase{ComparisonOp::kGreater, 3, 2, true},
        ComparisonCase{ComparisonOp::kGreater, 2, 3, false},
        ComparisonCase{ComparisonOp::kGreaterEqual, 2, 2, true},
        ComparisonCase{ComparisonOp::kGreaterEqual, 1, 2, false},
        ComparisonCase{ComparisonOp::kEqual, 5, 5, true},
        ComparisonCase{ComparisonOp::kEqual, 5, 6, false},
        ComparisonCase{ComparisonOp::kNotEqual, 5, 6, true},
        ComparisonCase{ComparisonOp::kNotEqual, 5, 5, false},
        ComparisonCase{ComparisonOp::kLess, -10, 0, true},
        ComparisonCase{ComparisonOp::kGreater, 0, -10, true}));

TEST(ComparisonSymbolsTest, SymbolsCompareStructurally) {
  SymbolTablePtr symbols = MakeSymbolTable();
  const Term a = Term::Symbol(symbols->Intern("a"));
  const Term b = Term::Symbol(symbols->Intern("b"));
  EXPECT_TRUE(EvaluateComparison(ComparisonOp::kEqual, a, a));
  EXPECT_TRUE(EvaluateComparison(ComparisonOp::kNotEqual, a, b));
}

TEST(ComparisonSymbolsTest, MixedKindsUseTotalOrder) {
  SymbolTablePtr symbols = MakeSymbolTable();
  const Term integer = Term::Integer(1);
  const Term symbol = Term::Symbol(symbols->Intern("a"));
  // Integers sort before symbols in the Term total order.
  EXPECT_TRUE(EvaluateComparison(ComparisonOp::kLess, integer, symbol));
  EXPECT_FALSE(EvaluateComparison(ComparisonOp::kLess, symbol, integer));
}

TEST(ComparisonOpStringsTest, AllRendered) {
  EXPECT_STREQ(ComparisonOpToString(ComparisonOp::kLess), "<");
  EXPECT_STREQ(ComparisonOpToString(ComparisonOp::kLessEqual), "<=");
  EXPECT_STREQ(ComparisonOpToString(ComparisonOp::kGreater), ">");
  EXPECT_STREQ(ComparisonOpToString(ComparisonOp::kGreaterEqual), ">=");
  EXPECT_STREQ(ComparisonOpToString(ComparisonOp::kEqual), "==");
  EXPECT_STREQ(ComparisonOpToString(ComparisonOp::kNotEqual), "!=");
}

}  // namespace
}  // namespace streamasp
