// The shared reasoner pool's scheduler: deficit-round-robin weighting
// across tenant lanes, per-lane in-flight caps, drain semantics, and the
// lane counters the server's fairness accounting reads.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace streamasp {
namespace {

/// A manually released gate: tasks parked on Wait() hold a pool worker
/// until the test calls Open(), letting the test build up lane backlogs
/// deterministically before any dispatch decisions happen.
class Gate {
 public:
  void Wait() {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [this] { return open_; });
  }

  void Open() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      open_ = true;
    }
    cv_.notify_all();
  }

 private:
  std::mutex mutex_;
  std::condition_variable cv_;
  bool open_ = false;
};

/// Records which lane each dispatched task belonged to, in execution
/// order. Single-worker pools make the order deterministic.
class DispatchLog {
 public:
  void Record(char tag) {
    std::lock_guard<std::mutex> lock(mutex_);
    order_.push_back(tag);
  }

  std::vector<char> order() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return order_;
  }

 private:
  mutable std::mutex mutex_;
  std::vector<char> order_;
};

TEST(SharedPoolTest, DeficitRoundRobinHonorsWeights) {
  // One worker, so dispatch order is the scheduler's decision alone. A
  // gate task parks the worker while both lanes build their backlogs.
  SharedReasonerPool pool(1);
  auto gate_lane = pool.CreateQueue(/*weight=*/1, /*max_inflight=*/1);
  Gate gate;
  gate_lane->Submit([&gate] { gate.Wait(); });

  auto light = pool.CreateQueue(/*weight=*/1, /*max_inflight=*/1);
  auto heavy = pool.CreateQueue(/*weight=*/3, /*max_inflight=*/3);
  DispatchLog log;
  constexpr int kLight = 8;
  constexpr int kHeavy = 24;
  for (int i = 0; i < kLight; ++i) {
    light->Submit([&log] { log.Record('l'); });
  }
  for (int i = 0; i < kHeavy; ++i) {
    heavy->Submit([&log] { log.Record('h'); });
  }

  gate.Open();
  light->Drain();
  heavy->Drain();
  gate_lane->Drain();

  const std::vector<char> order = log.order();
  ASSERT_EQ(order.size(), static_cast<size_t>(kLight + kHeavy));
  // DRR with quantum == weight: over any prefix of the busy interval the
  // heavy lane gets ~3x the light lane's dispatch slots, never drifting
  // further than one quantum from the ideal split.
  int light_seen = 0;
  int heavy_seen = 0;
  for (size_t i = 0; i < order.size(); ++i) {
    (order[i] == 'l' ? light_seen : heavy_seen)++;
    if (light_seen < kLight && heavy_seen < kHeavy) {
      EXPECT_LE(std::abs(heavy_seen - 3 * light_seen), 4)
          << "prefix " << i << ": heavy=" << heavy_seen
          << " light=" << light_seen;
    }
  }
  EXPECT_EQ(light_seen, kLight);
  EXPECT_EQ(heavy_seen, kHeavy);
}

TEST(SharedPoolTest, InflightCapBoundsOneLanesConcurrency) {
  SharedReasonerPool pool(4);
  auto capped = pool.CreateQueue(/*weight=*/1, /*max_inflight=*/1);

  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  for (int i = 0; i < 16; ++i) {
    capped->Submit([&running, &peak] {
      const int now = running.fetch_add(1) + 1;
      int expected = peak.load();
      while (now > expected && !peak.compare_exchange_weak(expected, now)) {
      }
      // Linger long enough that a second dispatch of this lane (a cap
      // violation) would overlap on the 4-worker pool.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
      running.fetch_sub(1);
    });
  }
  capped->Drain();
  EXPECT_EQ(peak.load(), 1) << "cap-1 lane ran tasks concurrently";
}

TEST(SharedPoolTest, LaneUsesItsFullCapWhenWorkersAreFree) {
  // Four tasks that each wait until all four are running: completes only
  // if the pool dispatches the whole cap of one lane concurrently.
  SharedReasonerPool pool(4);
  auto lane = pool.CreateQueue(/*weight=*/1, /*max_inflight=*/4);

  std::mutex mutex;
  std::condition_variable cv;
  int running = 0;
  for (int i = 0; i < 4; ++i) {
    lane->Submit([&mutex, &cv, &running] {
      std::unique_lock<std::mutex> lock(mutex);
      ++running;
      cv.notify_all();
      cv.wait(lock, [&running] { return running == 4; });
    });
  }
  lane->Drain();
  EXPECT_EQ(running, 4);
}

TEST(SharedPoolTest, StatsCountSubmittedCompletedAndBacklog) {
  SharedReasonerPool pool(1);
  auto gate_lane = pool.CreateQueue(1, 1);
  Gate gate;
  gate_lane->Submit([&gate] { gate.Wait(); });

  auto lane = pool.CreateQueue(2, 2);
  for (int i = 0; i < 6; ++i) {
    lane->Submit([] {});
  }
  {
    const SharedReasonerPool::Queue::Stats parked = lane->stats();
    EXPECT_EQ(parked.submitted, 6u);
    EXPECT_EQ(parked.completed, 0u);
    EXPECT_EQ(parked.max_queued, 6u);
  }
  gate.Open();
  lane->Drain();
  gate_lane->Drain();
  const SharedReasonerPool::Queue::Stats drained = lane->stats();
  EXPECT_EQ(drained.submitted, 6u);
  EXPECT_EQ(drained.completed, 6u);
  EXPECT_EQ(drained.max_queued, 6u);
}

TEST(SharedPoolTest, DrainIsPerLaneAndReusable) {
  SharedReasonerPool pool(2);
  auto a = pool.CreateQueue(1, 2);
  auto b = pool.CreateQueue(1, 2);

  std::atomic<int> a_done{0};
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      a->Submit([&a_done] { a_done.fetch_add(1); });
    }
    b->Submit([] { std::this_thread::sleep_for(std::chrono::milliseconds(1)); });
    a->Drain();
    EXPECT_EQ(a_done.load(), 5 * (round + 1));
  }
  b->Drain();
  const auto b_stats = b->stats();
  EXPECT_EQ(b_stats.completed, 3u);
}

TEST(SharedPoolTest, ZeroWeightAndCapAreClamped) {
  SharedReasonerPool pool(1);
  auto lane = pool.CreateQueue(/*weight=*/0, /*max_inflight=*/0);
  EXPECT_GE(lane->weight(), 1u);
  EXPECT_GE(lane->max_inflight(), 1u);
  std::atomic<bool> ran{false};
  lane->Submit([&ran] { ran.store(true); });
  lane->Drain();
  EXPECT_TRUE(ran.load());
}

}  // namespace
}  // namespace streamasp
