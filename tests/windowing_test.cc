// Sliding count/time window extensions over the paper's tumbling windows.

#include <vector>

#include <gtest/gtest.h>

#include "stream/windowing.h"

namespace streamasp {
namespace {

Triple Item(SymbolTable& symbols, int64_t id) {
  return Triple{Term::Integer(id), symbols.Intern("p"), std::nullopt};
}

class CountWindowTest : public ::testing::Test {
 protected:
  CountWindowTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
  std::vector<TripleWindow> windows_;
};

TEST_F(CountWindowTest, TumblingWhenSlideEqualsSize) {
  SlidingCountWindower windower(
      3, 3, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 9; ++i) windower.Push(Item(*symbols_, i));
  ASSERT_EQ(windows_.size(), 3u);
  for (const TripleWindow& w : windows_) EXPECT_EQ(w.size(), 3u);
  // Tumbling: consecutive windows do not overlap.
  EXPECT_EQ(windows_[1].items[0].subject.integer_value(), 3);
  EXPECT_EQ(windows_[2].items[0].subject.integer_value(), 6);
}

TEST_F(CountWindowTest, SlidingOverlapsContent) {
  SlidingCountWindower windower(
      4, 2, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 8; ++i) windower.Push(Item(*symbols_, i));
  // First at item 4 (buffer full), then every 2 items.
  ASSERT_EQ(windows_.size(), 3u);
  EXPECT_EQ(windows_[0].items.front().subject.integer_value(), 0);
  EXPECT_EQ(windows_[1].items.front().subject.integer_value(), 2);
  EXPECT_EQ(windows_[2].items.front().subject.integer_value(), 4);
  for (const TripleWindow& w : windows_) EXPECT_EQ(w.size(), 4u);
}

TEST_F(CountWindowTest, FlushEmitsPartialWindow) {
  SlidingCountWindower windower(
      10, 10, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 4; ++i) windower.Push(Item(*symbols_, i));
  EXPECT_TRUE(windows_.empty());
  windower.Flush();
  ASSERT_EQ(windows_.size(), 1u);
  EXPECT_EQ(windows_[0].size(), 4u);
  // A second flush with nothing new is a no-op.
  windower.Flush();
  EXPECT_EQ(windows_.size(), 1u);
}

TEST_F(CountWindowTest, SequenceNumbersAreMonotonic) {
  SlidingCountWindower windower(
      2, 1, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 5; ++i) windower.Push(Item(*symbols_, i));
  for (size_t i = 0; i < windows_.size(); ++i) {
    EXPECT_EQ(windows_[i].sequence, i);
  }
}

TEST_F(CountWindowTest, DegenerateParametersClamped) {
  // size 0 -> 1; slide larger than size -> size.
  SlidingCountWindower windower(
      0, 99, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Push(Item(*symbols_, 1));
  windower.Push(Item(*symbols_, 2));
  EXPECT_EQ(windows_.size(), 2u);
}

class TimeWindowTest : public ::testing::Test {
 protected:
  TimeWindowTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
  std::vector<TripleWindow> windows_;
};

TEST_F(TimeWindowTest, EmitsAtSlideBoundaries) {
  SlidingTimeWindower windower(
      1000, 500, [&](const TripleWindow& w) { windows_.push_back(w); });
  // One item every 100 ms for 1.2 s.
  for (int i = 0; i < 12; ++i) {
    windower.Push(Item(*symbols_, i), i * 100);
  }
  // Boundaries at t=500 (items 0..4) and t=1000 (items 0..9).
  ASSERT_EQ(windows_.size(), 2u);
  EXPECT_EQ(windows_[0].size(), 5u);
  EXPECT_EQ(windows_[1].size(), 10u);
}

TEST_F(TimeWindowTest, OldItemsEvicted) {
  SlidingTimeWindower windower(
      1000, 1000, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Push(Item(*symbols_, 1), 0);
  windower.Push(Item(*symbols_, 2), 2500);  // Crosses t=1000 and t=2000.
  windower.Flush();
  // Window at t=1000 holds item 1; at t=2000 nothing (item 1 expired);
  // flush emits item 2.
  ASSERT_EQ(windows_.size(), 2u);
  EXPECT_EQ(windows_[0].size(), 1u);
  EXPECT_EQ(windows_[1].size(), 1u);
  EXPECT_EQ(windows_[1].items[0].subject.integer_value(), 2);
}

TEST_F(TimeWindowTest, OutOfOrderTimestampsClampedForward) {
  SlidingTimeWindower windower(
      1000, 500, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Push(Item(*symbols_, 1), 400);
  windower.Push(Item(*symbols_, 2), 100);  // Straggler: treated as t=400.
  windower.Push(Item(*symbols_, 3), 900);  // Crosses t=900 boundary.
  ASSERT_EQ(windows_.size(), 1u);
  EXPECT_EQ(windows_[0].size(), 2u);  // Items 1 and 2.
}

TEST_F(TimeWindowTest, FlushOnEmptyIsNoOp) {
  SlidingTimeWindower windower(
      100, 100, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Flush();
  EXPECT_TRUE(windows_.empty());
}

}  // namespace
}  // namespace streamasp
