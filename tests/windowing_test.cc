// Sliding count/time window extensions over the paper's tumbling windows,
// including the expired/admitted delta emission the incremental grounding
// layer consumes.

#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "stream/windowing.h"

namespace streamasp {
namespace {

Triple Item(SymbolTable& symbols, int64_t id) {
  return Triple{Term::Integer(id), symbols.Intern("p"), std::nullopt};
}

std::map<int64_t, int> Counts(const std::vector<Triple>& items) {
  std::map<int64_t, int> counts;
  for (const Triple& t : items) ++counts[t.subject.integer_value()];
  return counts;
}

/// The delta contract: previous.items - expired + admitted == items, as
/// multisets (an item may appear in both delta sets and must net out).
void ExpectDeltaInvariant(const std::vector<TripleWindow>& windows) {
  std::map<int64_t, int> running;  // Starts as the empty window.
  for (const TripleWindow& w : windows) {
    ASSERT_TRUE(w.has_delta) << "window " << w.sequence;
    for (const Triple& t : w.expired) {
      if (--running[t.subject.integer_value()] == 0) {
        running.erase(t.subject.integer_value());
      }
    }
    for (const Triple& t : w.admitted) ++running[t.subject.integer_value()];
    EXPECT_EQ(running, Counts(w.items)) << "window " << w.sequence;
  }
}

class CountWindowTest : public ::testing::Test {
 protected:
  CountWindowTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
  std::vector<TripleWindow> windows_;
};

TEST_F(CountWindowTest, TumblingWhenSlideEqualsSize) {
  SlidingCountWindower windower(
      3, 3, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 9; ++i) windower.Push(Item(*symbols_, i));
  ASSERT_EQ(windows_.size(), 3u);
  for (const TripleWindow& w : windows_) EXPECT_EQ(w.size(), 3u);
  // Tumbling: consecutive windows do not overlap.
  EXPECT_EQ(windows_[1].items[0].subject.integer_value(), 3);
  EXPECT_EQ(windows_[2].items[0].subject.integer_value(), 6);
}

TEST_F(CountWindowTest, SlidingOverlapsContent) {
  SlidingCountWindower windower(
      4, 2, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 8; ++i) windower.Push(Item(*symbols_, i));
  // First at item 4 (buffer full), then every 2 items.
  ASSERT_EQ(windows_.size(), 3u);
  EXPECT_EQ(windows_[0].items.front().subject.integer_value(), 0);
  EXPECT_EQ(windows_[1].items.front().subject.integer_value(), 2);
  EXPECT_EQ(windows_[2].items.front().subject.integer_value(), 4);
  for (const TripleWindow& w : windows_) EXPECT_EQ(w.size(), 4u);
}

TEST_F(CountWindowTest, FlushEmitsPartialWindow) {
  SlidingCountWindower windower(
      10, 10, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 4; ++i) windower.Push(Item(*symbols_, i));
  EXPECT_TRUE(windows_.empty());
  windower.Flush();
  ASSERT_EQ(windows_.size(), 1u);
  EXPECT_EQ(windows_[0].size(), 4u);
  // A second flush with nothing new is a no-op.
  windower.Flush();
  EXPECT_EQ(windows_.size(), 1u);
}

TEST_F(CountWindowTest, SequenceNumbersAreMonotonic) {
  SlidingCountWindower windower(
      2, 1, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 5; ++i) windower.Push(Item(*symbols_, i));
  for (size_t i = 0; i < windows_.size(); ++i) {
    EXPECT_EQ(windows_[i].sequence, i);
  }
}

TEST_F(CountWindowTest, DegenerateParametersClamped) {
  // size 0 -> 1; slide larger than size -> size.
  SlidingCountWindower windower(
      0, 99, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Push(Item(*symbols_, 1));
  windower.Push(Item(*symbols_, 2));
  EXPECT_EQ(windows_.size(), 2u);
}

TEST_F(CountWindowTest, DeltaInvariantAcrossSlideSizes) {
  for (const size_t slide : {size_t{1}, size_t{2}, size_t{3}, size_t{4}}) {
    windows_.clear();
    SlidingCountWindower windower(
        4, slide, [&](const TripleWindow& w) { windows_.push_back(w); });
    for (int i = 0; i < 13; ++i) windower.Push(Item(*symbols_, i));
    windower.Flush();
    ASSERT_FALSE(windows_.empty()) << "slide " << slide;
    ExpectDeltaInvariant(windows_);
  }
}

TEST_F(CountWindowTest, SlideEqualsSizeIsFullReplacement) {
  // Tumbling via the sliding windower: consecutive windows are disjoint,
  // so the delta must be a full replacement — everything expires and the
  // whole new window is admitted (the grounding cache fully invalidates).
  SlidingCountWindower windower(
      3, 3, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 9; ++i) windower.Push(Item(*symbols_, i));
  ASSERT_EQ(windows_.size(), 3u);
  EXPECT_TRUE(windows_[0].expired.empty());
  EXPECT_EQ(Counts(windows_[0].admitted), Counts(windows_[0].items));
  for (size_t k = 1; k < windows_.size(); ++k) {
    EXPECT_EQ(Counts(windows_[k].expired), Counts(windows_[k - 1].items));
    EXPECT_EQ(Counts(windows_[k].admitted), Counts(windows_[k].items));
  }
}

TEST_F(CountWindowTest, DuplicateItemsKeepMultisetDeltas) {
  SlidingCountWindower windower(
      4, 2, [&](const TripleWindow& w) { windows_.push_back(w); });
  // Only two distinct payloads circulate: every window holds duplicates.
  for (int i = 0; i < 12; ++i) windower.Push(Item(*symbols_, i % 2));
  windower.Flush();
  ExpectDeltaInvariant(windows_);
  // Steady state: each slide expires exactly two items and admits two,
  // even though the expired and admitted atoms are identical.
  ASSERT_GE(windows_.size(), 2u);
  EXPECT_EQ(windows_[1].expired.size(), 2u);
  EXPECT_EQ(windows_[1].admitted.size(), 2u);
}

TEST_F(CountWindowTest, FlushDeltaCoversThePartialTail) {
  SlidingCountWindower windower(
      4, 4, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 6; ++i) windower.Push(Item(*symbols_, i));
  windower.Flush();  // Trailer: the rolling buffer [2..5].
  ASSERT_EQ(windows_.size(), 2u);
  ExpectDeltaInvariant(windows_);
  EXPECT_EQ(windows_[1].size(), 4u);
  EXPECT_EQ(windows_[1].expired.size(), 2u);   // Items 0, 1 rolled out.
  EXPECT_EQ(windows_[1].admitted.size(), 2u);  // Items 4, 5 arrived.
}

class TimeWindowTest : public ::testing::Test {
 protected:
  TimeWindowTest() : symbols_(MakeSymbolTable()) {}
  SymbolTablePtr symbols_;
  std::vector<TripleWindow> windows_;
};

TEST_F(TimeWindowTest, EmitsAtSlideBoundaries) {
  SlidingTimeWindower windower(
      1000, 500, [&](const TripleWindow& w) { windows_.push_back(w); });
  // One item every 100 ms for 1.2 s.
  for (int i = 0; i < 12; ++i) {
    windower.Push(Item(*symbols_, i), i * 100);
  }
  // Boundaries at t=500 (items 0..4) and t=1000 (items 0..9).
  ASSERT_EQ(windows_.size(), 2u);
  EXPECT_EQ(windows_[0].size(), 5u);
  EXPECT_EQ(windows_[1].size(), 10u);
}

TEST_F(TimeWindowTest, OldItemsEvicted) {
  SlidingTimeWindower windower(
      1000, 1000, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Push(Item(*symbols_, 1), 0);
  windower.Push(Item(*symbols_, 2), 2500);  // Crosses t=1000 and t=2000.
  windower.Flush();
  // Window at t=1000 holds item 1; at t=2000 nothing (item 1 expired);
  // flush emits item 2.
  ASSERT_EQ(windows_.size(), 2u);
  EXPECT_EQ(windows_[0].size(), 1u);
  EXPECT_EQ(windows_[1].size(), 1u);
  EXPECT_EQ(windows_[1].items[0].subject.integer_value(), 2);
}

TEST_F(TimeWindowTest, OutOfOrderTimestampsClampedForward) {
  SlidingTimeWindower windower(
      1000, 500, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Push(Item(*symbols_, 1), 400);
  windower.Push(Item(*symbols_, 2), 100);  // Straggler: treated as t=400.
  windower.Push(Item(*symbols_, 3), 900);  // Crosses t=900 boundary.
  ASSERT_EQ(windows_.size(), 1u);
  EXPECT_EQ(windows_[0].size(), 2u);  // Items 1 and 2.
}

TEST_F(TimeWindowTest, DeltaInvariantWithEvictions) {
  SlidingTimeWindower windower(
      1000, 500, [&](const TripleWindow& w) { windows_.push_back(w); });
  for (int i = 0; i < 30; ++i) {
    windower.Push(Item(*symbols_, i), i * 130);
  }
  windower.Flush();
  ASSERT_GE(windows_.size(), 3u);
  ExpectDeltaInvariant(windows_);
}

TEST_F(TimeWindowTest, ItemAgedOutBetweenEmissionsNetsToZero) {
  SlidingTimeWindower windower(
      1000, 1000, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Push(Item(*symbols_, 1), 0);
  // Item 2 lands at t=1100, then a long gap: the t=2000 boundary emits
  // {2}, and by t=5000 item 2 has aged out without a non-empty boundary
  // in between — the skipped boundaries' evictions fold into the next
  // emitted window's expired set.
  windower.Push(Item(*symbols_, 2), 1100);
  windower.Push(Item(*symbols_, 3), 5000);
  windower.Flush();
  ASSERT_EQ(windows_.size(), 3u);  // {1} at t=1000, {2} at t=2000, {3} flush.
  ExpectDeltaInvariant(windows_);
  EXPECT_EQ(windows_[2].size(), 1u);
  EXPECT_EQ(windows_[2].items[0].subject.integer_value(), 3);
}

TEST_F(TimeWindowTest, EmptyWindowBoundariesFoldIntoNextDelta) {
  SlidingTimeWindower windower(
      500, 500, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Push(Item(*symbols_, 1), 0);
  // Crosses many empty boundaries; only non-empty windows are emitted and
  // the delta ledger still balances.
  windower.Push(Item(*symbols_, 2), 4000);
  windower.Flush();
  ASSERT_EQ(windows_.size(), 2u);
  ExpectDeltaInvariant(windows_);
}

TEST_F(TimeWindowTest, FlushOnEmptyIsNoOp) {
  SlidingTimeWindower windower(
      100, 100, [&](const TripleWindow& w) { windows_.push_back(w); });
  windower.Flush();
  EXPECT_TRUE(windows_.empty());
}

}  // namespace
}  // namespace streamasp
