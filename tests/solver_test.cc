#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "ground/grounder.h"
#include "solve/solver.h"

namespace streamasp {
namespace {

/// Renders each answer set as a sorted set of atom strings for robust
/// comparisons.
std::set<std::set<std::string>> ModelStrings(
    const GroundProgram& ground, const std::vector<AnswerSet>& models,
    const SymbolTable& symbols) {
  std::set<std::set<std::string>> out;
  for (const AnswerSet& model : models) {
    std::set<std::string> atoms;
    for (GroundAtomId id : model.atoms) {
      atoms.insert(ground.atoms().GetAtom(id).ToString(symbols));
    }
    out.insert(std::move(atoms));
  }
  return out;
}

class SolverTest : public ::testing::Test {
 protected:
  SolverTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  /// Grounds + solves, returning the models as string sets.
  std::set<std::set<std::string>> SolveText(const std::string& text,
                                            SolverOptions solver_options = {},
                                            GroundingOptions ground_options = {}) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_TRUE(program.ok()) << program.status();
    Grounder grounder(ground_options);
    StatusOr<GroundProgram> ground = grounder.Ground(*program);
    EXPECT_TRUE(ground.ok()) << ground.status();
    Solver solver(solver_options);
    StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
    EXPECT_TRUE(models.ok()) << models.status();
    last_ground_ = *ground;
    return ModelStrings(*ground, *models, *symbols_);
  }

  SymbolTablePtr symbols_;
  Parser parser_;
  GroundProgram last_ground_;
};

TEST_F(SolverTest, FactsOnlyHaveOneModel) {
  const auto models = SolveText("a. b. c(1).");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(*models.begin(),
            (std::set<std::string>{"a", "b", "c(1)"}));
}

TEST_F(SolverTest, DefiniteChainsDerive) {
  const auto models = SolveText("a. b :- a. c :- b.");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models.begin()->count("c"));
}

TEST_F(SolverTest, NegationCycleGivesTwoModels) {
  const auto models = SolveText("a :- not b. b :- not a.");
  EXPECT_EQ(models.size(), 2u);
  EXPECT_TRUE(models.count({"a"}));
  EXPECT_TRUE(models.count({"b"}));
}

TEST_F(SolverTest, OddLoopHasNoModel) {
  EXPECT_TRUE(SolveText("a :- not a.").empty());
}

TEST_F(SolverTest, OddLoopEscapedByAlternative) {
  // a :- not a is defused when a has independent support.
  const auto models = SolveText("a :- not a. a :- b. b.");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models.begin()->count("a"));
}

TEST_F(SolverTest, PositiveLoopIsUnfounded) {
  // Mutual positive support without external support must not be a model.
  const auto models = SolveText("a :- b. b :- a.", SolverOptions{},
                                GroundingOptions{.simplify = false});
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models.begin()->empty());
}

TEST_F(SolverTest, UnfoundedLoopBehindNegation) {
  // {a,b} would satisfy the completion but is unfounded; the stable model
  // is {c}.
  const auto models = SolveText(R"(
    a :- b.
    b :- a.
    c :- not a.
  )", SolverOptions{}, GroundingOptions{.simplify = false});
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(*models.begin(), (std::set<std::string>{"c"}));
}

TEST_F(SolverTest, ConstraintEliminatesModels) {
  const auto models = SolveText(R"(
    a :- not b. b :- not a.
    :- a.
  )");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models.count({"b"}));
}

TEST_F(SolverTest, ConstraintCanEliminateEverything) {
  EXPECT_TRUE(SolveText("a. :- a.").empty());
}

TEST_F(SolverTest, ChoiceViaEvenCycleAndConstraints) {
  // Classic 2-coloring of one edge via even negation cycles.
  const auto models = SolveText(R"(
    red(n) :- not green(n).
    green(n) :- not red(n).
    red(m) :- not green(m).
    green(m) :- not red(m).
    :- red(n), red(m).
    :- green(n), green(m).
  )");
  EXPECT_EQ(models.size(), 2u);
}

TEST_F(SolverTest, StratifiedProgramSingleModel) {
  const auto models = SolveText(R"(
    p(1). p(2). q(2).
    r(X) :- p(X), not q(X).
  )");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_TRUE(models.begin()->count("r(1)"));
  EXPECT_FALSE(models.begin()->count("r(2)"));
}

TEST_F(SolverTest, DisjunctionPicksMinimalModels) {
  const auto models = SolveText("a | b.");
  EXPECT_EQ(models.size(), 2u);
  EXPECT_TRUE(models.count({"a"}));
  EXPECT_TRUE(models.count({"b"}));
  EXPECT_FALSE(models.count({"a", "b"}));
}

TEST_F(SolverTest, DisjunctionWithBody) {
  const auto models = SolveText("c. a | b :- c.");
  EXPECT_EQ(models.size(), 2u);
}

TEST_F(SolverTest, DisjunctionMinimalityRejectsSupersets) {
  // b is forced; the disjunct a|b is then satisfied by b alone, so {a,b}
  // is not minimal and a stays false.
  const auto models = SolveText("b. a | b.");
  ASSERT_EQ(models.size(), 1u);
  EXPECT_EQ(*models.begin(), (std::set<std::string>{"b"}));
}

TEST_F(SolverTest, DisjunctionInteractsWithConstraints) {
  const auto models = SolveText(R"(
    a | b | c.
    :- a.
  )");
  EXPECT_EQ(models.size(), 2u);
  EXPECT_TRUE(models.count({"b"}));
  EXPECT_TRUE(models.count({"c"}));
}

TEST_F(SolverTest, MaxModelsCapsEnumeration) {
  SolverOptions options;
  options.max_models = 1;
  const auto models = SolveText("a :- not b. b :- not a.", options);
  EXPECT_EQ(models.size(), 1u);
}

TEST_F(SolverTest, ManyModelEnumeration) {
  // 3 independent binary choices: 8 models.
  const auto models = SolveText(R"(
    a1 :- not b1. b1 :- not a1.
    a2 :- not b2. b2 :- not a2.
    a3 :- not b3. b3 :- not a3.
  )");
  EXPECT_EQ(models.size(), 8u);
}

TEST_F(SolverTest, DecisionLimitReported) {
  SolverOptions options;
  options.max_decisions = 1;
  StatusOr<Program> program = parser_.ParseProgram(R"(
    a1 :- not b1. b1 :- not a1.
    a2 :- not b2. b2 :- not a2.
    a3 :- not b3. b3 :- not a3.
  )");
  ASSERT_TRUE(program.ok());
  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok());
  Solver solver(options);
  EXPECT_EQ(solver.Solve(*ground).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(SolverTest, VerificationOffStillCorrectOnNormalPrograms) {
  SolverOptions options;
  options.verify_models = false;
  const auto models = SolveText("a :- not b. b :- not a.", options);
  EXPECT_EQ(models.size(), 2u);
}

TEST_F(SolverTest, GroundedPaperProgramSolves) {
  const auto models = SolveText(R"(
    average_speed(newcastle, 10). car_number(newcastle, 55).
    traffic_light(newcastle).
    car_in_smoke(car1, high). car_speed(car1, 0).
    car_location(car1, dangan).
    very_slow_speed(X) :- average_speed(X, Y), Y < 20.
    many_cars(X) :- car_number(X, Y), Y > 40.
    traffic_jam(X) :- very_slow_speed(X), many_cars(X),
                      not traffic_light(X).
    car_fire(X) :- car_in_smoke(C, high), car_speed(C, 0),
                   car_location(C, X).
    give_notification(X) :- traffic_jam(X).
    give_notification(X) :- car_fire(X).
  )");
  ASSERT_EQ(models.size(), 1u);
  const std::set<std::string>& model = *models.begin();
  // The paper's §II-A ground truth: car fire in dangan, NO traffic jam in
  // newcastle (blocked by the traffic light).
  EXPECT_TRUE(model.count("car_fire(dangan)"));
  EXPECT_TRUE(model.count("give_notification(dangan)"));
  EXPECT_FALSE(model.count("traffic_jam(newcastle)"));
  EXPECT_FALSE(model.count("give_notification(newcastle)"));
}

// ------------------------------------------------------- IsStableModel.

class StableModelCheckTest : public SolverTest {};

TEST_F(StableModelCheckTest, AcceptsSolverModels) {
  StatusOr<Program> program = parser_.ParseProgram(R"(
    a :- not b. b :- not a. c :- a.
  )");
  ASSERT_TRUE(program.ok());
  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok());
  Solver solver;
  StatusOr<std::vector<AnswerSet>> models = solver.Solve(*ground);
  ASSERT_TRUE(models.ok());
  ASSERT_EQ(models->size(), 2u);
  for (const AnswerSet& model : *models) {
    EXPECT_TRUE(IsStableModel(*ground, model.atoms));
  }
}

TEST_F(StableModelCheckTest, RejectsNonModels) {
  StatusOr<Program> program = parser_.ParseProgram("a. b :- a.");
  ASSERT_TRUE(program.ok());
  Grounder grounder(GroundingOptions{.simplify = false});
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok());
  // The empty set does not satisfy fact a.
  EXPECT_FALSE(IsStableModel(*ground, {}));
}

TEST_F(StableModelCheckTest, RejectsNonMinimalSets) {
  StatusOr<Program> program = parser_.ParseProgram("a :- not b. b :- not a.");
  ASSERT_TRUE(program.ok());
  Grounder grounder(GroundingOptions{.simplify = false});
  StatusOr<GroundProgram> ground = grounder.Ground(*program);
  ASSERT_TRUE(ground.ok());
  // {a, b} satisfies both rules classically, but the reduct w.r.t. it is
  // empty, so its least model {} differs: not stable.
  const GroundAtomId a =
      ground->atoms().Lookup(Atom(symbols_->Intern("a"), {}));
  const GroundAtomId b =
      ground->atoms().Lookup(Atom(symbols_->Intern("b"), {}));
  ASSERT_NE(a, kInvalidGroundAtom);
  ASSERT_NE(b, kInvalidGroundAtom);
  std::vector<GroundAtomId> bad = {a, b};
  std::sort(bad.begin(), bad.end());
  EXPECT_FALSE(IsStableModel(*ground, bad));
  // The empty set is also not stable: both rules then fire in the reduct.
  EXPECT_FALSE(IsStableModel(*ground, {}));
}

}  // namespace
}  // namespace streamasp
