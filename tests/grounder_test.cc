#include <algorithm>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "ground/grounder.h"

namespace streamasp {
namespace {

class GrounderTest : public ::testing::Test {
 protected:
  GrounderTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  GroundProgram MustGround(const std::string& text,
                           GroundingOptions options = {}) {
    StatusOr<Program> program = parser_.ParseProgram(text);
    EXPECT_TRUE(program.ok()) << program.status();
    Grounder grounder(options);
    StatusOr<GroundProgram> ground = grounder.Ground(*program, &last_stats_);
    EXPECT_TRUE(ground.ok()) << ground.status();
    return std::move(ground).value();
  }

  /// The set of atoms that appear as single-head facts.
  std::set<std::string> FactStrings(const GroundProgram& ground) {
    std::set<std::string> facts;
    for (const GroundRule& rule : ground.rules()) {
      if (rule.is_fact()) {
        facts.insert(ground.atoms().GetAtom(rule.head[0]).ToString(*symbols_));
      }
    }
    return facts;
  }

  SymbolTablePtr symbols_;
  Parser parser_;
  GroundingStats last_stats_;
};

TEST_F(GrounderTest, FactsPassThrough) {
  const GroundProgram g = MustGround("p(1). p(2). q(a).");
  EXPECT_EQ(g.rules().size(), 3u);
  EXPECT_EQ(FactStrings(g),
            (std::set<std::string>{"p(1)", "p(2)", "q(a)"}));
}

TEST_F(GrounderTest, RecursiveRuleRepeatingItsHeadPredicate) {
  // Regression: both positive literals share the head predicate, so the
  // recursion extends the predicate's lazy join index while an index
  // bucket is mid-iteration — formerly a use-after-free on the bucket's
  // reallocated storage.
  std::string text = "r(a, Z) :- r(a, Y), r(Y, Z).\n";
  for (int i = 1; i <= 20; ++i) {
    text += "r(a, " + std::to_string(i) + ").\n";
    text += "r(" + std::to_string(i) + ", " + std::to_string(100 + i) +
            ").\n";
  }
  const GroundProgram g = MustGround(text);
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("r(a,101)"));
  EXPECT_TRUE(facts.count("r(a,120)"));
}

TEST_F(GrounderTest, SimpleJoinInstantiates) {
  const GroundProgram g = MustGround(R"(
    p(1). p(2). q(2). q(3).
    both(X) :- p(X), q(X).
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("both(2)"));
  EXPECT_FALSE(facts.count("both(1)"));
  EXPECT_FALSE(facts.count("both(3)"));
}

TEST_F(GrounderTest, ComparisonsFilterDuringGrounding) {
  const GroundProgram g = MustGround(R"(
    speed(a, 10). speed(b, 30).
    slow(X) :- speed(X, Y), Y < 20.
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("slow(a)"));
  EXPECT_FALSE(facts.count("slow(b)"));
}

TEST_F(GrounderTest, ComparisonBetweenTwoVariables) {
  const GroundProgram g = MustGround(R"(
    edge(1, 3). edge(5, 2).
    increasing(X, Y) :- edge(X, Y), X < Y.
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("increasing(1,3)"));
  EXPECT_FALSE(facts.count("increasing(5,2)"));
}

TEST_F(GrounderTest, TransitiveClosureViaRecursion) {
  const GroundProgram g = MustGround(R"(
    edge(1, 2). edge(2, 3). edge(3, 4).
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
  )");
  const std::set<std::string> facts = FactStrings(g);
  for (const char* expected :
       {"reach(1,2)", "reach(1,3)", "reach(1,4)", "reach(2,3)",
        "reach(2,4)", "reach(3,4)"}) {
    EXPECT_TRUE(facts.count(expected)) << expected;
  }
  EXPECT_FALSE(facts.count("reach(2,1)"));
}

TEST_F(GrounderTest, RecursionWithCycleTerminates) {
  const GroundProgram g = MustGround(R"(
    edge(1, 2). edge(2, 1).
    reach(X, Y) :- edge(X, Y).
    reach(X, Z) :- reach(X, Y), edge(Y, Z).
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("reach(1,1)"));
  EXPECT_TRUE(facts.count("reach(2,2)"));
}

TEST_F(GrounderTest, MutualRecursionInOneComponent) {
  const GroundProgram g = MustGround(R"(
    seed(1).
    even(X) :- seed(X).
    odd(X) :- even(X), follows(X, Y), seed(Y).
    follows(1, 1).
    even2(X) :- odd(X).
  )");
  EXPECT_GE(g.rules().size(), 4u);
}

TEST_F(GrounderTest, StratifiedNegationResolvedEagerly) {
  // q is fully evaluated before p's component; `not q(X)` with underivable
  // q(2) is erased, with derivable q(1) blocks at solve time but the
  // simplifier already drops the satisfied-negation rule.
  const GroundProgram g = MustGround(R"(
    base(1). base(2).
    q(1).
    p(X) :- base(X), not q(X).
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("p(2)"));
  EXPECT_FALSE(facts.count("p(1)"));
}

TEST_F(GrounderTest, UnstratifiedNegationKeptForSolver) {
  const GroundProgram g = MustGround(R"(
    a :- not b.
    b :- not a.
  )", GroundingOptions{});
  // Both rules must survive with their negative bodies intact.
  size_t with_negatives = 0;
  for (const GroundRule& rule : g.rules()) {
    if (!rule.negative_body.empty()) ++with_negatives;
  }
  EXPECT_EQ(with_negatives, 2u);
}

TEST_F(GrounderTest, SimplificationRemovesFactBodies) {
  GroundingOptions simplify;
  simplify.simplify = true;
  const GroundProgram g = MustGround(R"(
    p(1).
    q(X) :- p(X).
  )", simplify);
  // q(1) should be reduced to a fact.
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("q(1)"));
  for (const GroundRule& rule : g.rules()) {
    EXPECT_TRUE(rule.positive_body.empty())
        << "simplified stratified program must have no residual bodies";
  }
}

TEST_F(GrounderTest, NoSimplifyKeepsBodies) {
  GroundingOptions raw;
  raw.simplify = false;
  const GroundProgram g = MustGround(R"(
    p(1).
    q(X) :- p(X).
  )", raw);
  bool saw_body = false;
  for (const GroundRule& rule : g.rules()) {
    if (!rule.positive_body.empty()) saw_body = true;
  }
  EXPECT_TRUE(saw_body);
  EXPECT_EQ(last_stats_.num_rules_raw, last_stats_.num_rules);
}

TEST_F(GrounderTest, ConstraintsGroundAgainstFinalExtensions) {
  const GroundProgram g = MustGround(R"(
    p(1). p(2).
    big(X) :- p(X), X > 1.
    :- big(X).
  )");
  size_t constraints = 0;
  for (const GroundRule& rule : g.rules()) {
    if (rule.is_constraint()) ++constraints;
  }
  EXPECT_EQ(constraints, 1u);
  EXPECT_EQ(last_stats_.num_constraints, 1u);
}

TEST_F(GrounderTest, UnsatisfiedConstraintDisappears) {
  const GroundProgram g = MustGround(R"(
    p(1).
    :- p(2).
  )");
  for (const GroundRule& rule : g.rules()) {
    EXPECT_FALSE(rule.is_constraint());
  }
}

TEST_F(GrounderTest, DisjunctiveHeadsGroundTogether) {
  const GroundProgram g = MustGround(R"(
    item(1).
    good(X) | bad(X) :- item(X).
    flagged(X) :- bad(X).
  )");
  bool saw_disjunction = false;
  for (const GroundRule& rule : g.rules()) {
    if (rule.head.size() == 2) saw_disjunction = true;
  }
  EXPECT_TRUE(saw_disjunction);
  // flagged(1) must have been instantiated (bad(1) is possible).
  const GroundAtomId flagged = g.atoms().Lookup(
      Atom(symbols_->Intern("flagged"), {Term::Integer(1)}));
  EXPECT_NE(flagged, kInvalidGroundAtom);
}

TEST_F(GrounderTest, InputFactsMergeWithProgram) {
  StatusOr<Program> program = parser_.ParseProgram(R"(
    #input p/1.
    q(X) :- p(X).
  )");
  ASSERT_TRUE(program.ok());
  std::vector<Atom> facts = {Atom(symbols_->Intern("p"), {Term::Integer(7)})};
  Grounder grounder;
  StatusOr<GroundProgram> ground = grounder.Ground(*program, facts);
  ASSERT_TRUE(ground.ok()) << ground.status();
  EXPECT_NE(ground->atoms().Lookup(
                Atom(symbols_->Intern("q"), {Term::Integer(7)})),
            kInvalidGroundAtom);
}

TEST_F(GrounderTest, RejectsNonGroundInputFact) {
  StatusOr<Program> program = parser_.ParseProgram("q(X) :- p(X).");
  ASSERT_TRUE(program.ok());
  std::vector<Atom> facts = {
      Atom(symbols_->Intern("p"), {Term::Variable(symbols_->Intern("X"))})};
  Grounder grounder;
  EXPECT_EQ(grounder.Ground(*program, facts).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GrounderTest, RejectsUnsafeProgram) {
  StatusOr<Program> program = parser_.ParseProgram("h(X) :- q.");
  ASSERT_TRUE(program.ok());
  Grounder grounder;
  EXPECT_EQ(grounder.Ground(*program).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(GrounderTest, FunctionTermsInstantiate) {
  const GroundProgram g = MustGround(R"(
    reading(sensor(1), 10).
    hot(S) :- reading(S, V), V >= 10.
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("hot(sensor(1))"));
}

TEST_F(GrounderTest, RuleLimitTriggersOnDivergentPrograms) {
  GroundingOptions options;
  options.max_ground_rules = 100;
  // f(X) grows forever through the successor function term.
  StatusOr<Program> program = parser_.ParseProgram(R"(
    n(0).
    n(s(X)) :- n(X).
  )");
  ASSERT_TRUE(program.ok());
  Grounder grounder(options);
  EXPECT_EQ(grounder.Ground(*program).status().code(),
            StatusCode::kResourceExhausted);
}

TEST_F(GrounderTest, StatsAreConsistent) {
  MustGround(R"(
    p(1). p(2).
    q(X) :- p(X).
    :- q(3).
  )");
  EXPECT_EQ(last_stats_.num_rules, 4u);   // p(1), p(2), q(1), q(2).
  EXPECT_EQ(last_stats_.num_facts, 4u);
  EXPECT_EQ(last_stats_.num_constraints, 0u);
  EXPECT_GT(last_stats_.num_atoms, 0u);
}

TEST_F(GrounderTest, GroundProgramToStringRendersRules) {
  const GroundProgram g = MustGround(R"(
    a :- not b.
    b :- not a.
  )", GroundingOptions{});
  const std::string text = g.ToString(*symbols_);
  EXPECT_NE(text.find("a :- not b."), std::string::npos);
  EXPECT_NE(text.find("b :- not a."), std::string::npos);
}

TEST_F(GrounderTest, SharedVariableAcrossThreeLiterals) {
  const GroundProgram g = MustGround(R"(
    vss(n1). vss(n2).
    mc(n1). mc(n3).
    tl(n1).
    tj(X) :- vss(X), mc(X), not tl(X).
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_FALSE(facts.count("tj(n1)"));  // Blocked by tl(n1).
  EXPECT_FALSE(facts.count("tj(n2)"));  // No mc(n2).
  EXPECT_FALSE(facts.count("tj(n3)"));  // No vss(n3).
}

TEST_F(GrounderTest, ConstantsInRulePatternsMatchSelectively) {
  const GroundProgram g = MustGround(R"(
    car_in_smoke(car1, high). car_in_smoke(car2, low).
    alarm(C) :- car_in_smoke(C, high).
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("alarm(car1)"));
  EXPECT_FALSE(facts.count("alarm(car2)"));
}

TEST_F(GrounderTest, RepeatedVariableInOneAtom) {
  const GroundProgram g = MustGround(R"(
    pair(1, 1). pair(1, 2).
    diag(X) :- pair(X, X).
  )");
  const std::set<std::string> facts = FactStrings(g);
  EXPECT_TRUE(facts.count("diag(1)"));
  EXPECT_EQ(facts.count("diag(2)"), 0u);
}

}  // namespace
}  // namespace streamasp
