#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "asp/parser.h"
#include "streamrule/accuracy.h"
#include "streamrule/answer.h"
#include "streamrule/combining_handler.h"
#include "streamrule/partitioning_handler.h"
#include "streamrule/random_partitioner.h"

namespace streamasp {
namespace {

class StreamRuleTest : public ::testing::Test {
 protected:
  StreamRuleTest() : symbols_(MakeSymbolTable()), parser_(symbols_) {}

  Atom A(const std::string& text) {
    StatusOr<Atom> atom = parser_.ParseGroundAtom(text);
    EXPECT_TRUE(atom.ok()) << atom.status();
    return std::move(atom).value();
  }

  GroundAnswer Ans(std::initializer_list<const char*> atoms) {
    GroundAnswer answer;
    for (const char* text : atoms) answer.push_back(A(text));
    NormalizeAnswer(&answer);
    return answer;
  }

  PredicateSignature Sig(const std::string& name, uint32_t arity) {
    return PredicateSignature{symbols_->Intern(name), arity};
  }

  SymbolTablePtr symbols_;
  Parser parser_;
};

// -------------------------------------------------------- Answer helpers.

TEST_F(StreamRuleTest, NormalizeSortsAndDedups) {
  GroundAnswer answer = {A("b"), A("a"), A("b")};
  NormalizeAnswer(&answer);
  EXPECT_EQ(answer.size(), 2u);
  EXPECT_TRUE(answer[0] < answer[1]);
}

TEST_F(StreamRuleTest, IntersectionSize) {
  EXPECT_EQ(IntersectionSize(Ans({"a", "b", "c"}), Ans({"b", "c", "d"})), 2u);
  EXPECT_EQ(IntersectionSize(Ans({}), Ans({"a"})), 0u);
  EXPECT_EQ(IntersectionSize(Ans({"a"}), Ans({"a"})), 1u);
}

TEST_F(StreamRuleTest, UnionAnswers) {
  const GroundAnswer u = UnionAnswers(Ans({"a", "b"}), Ans({"b", "c"}));
  EXPECT_EQ(u, Ans({"a", "b", "c"}));
}

TEST_F(StreamRuleTest, ProjectAnswerKeepsOnlyShownSignatures) {
  const GroundAnswer answer = Ans({"p(1)", "q(1)", "p(2)"});
  const GroundAnswer projected =
      ProjectAnswer(answer, {Sig("p", 1)});
  EXPECT_EQ(projected, Ans({"p(1)", "p(2)"}));
}

TEST_F(StreamRuleTest, AnswerToStringRendersSet) {
  // Atom order follows symbol interning order ("a" interned first here).
  EXPECT_EQ(AnswerToString(Ans({"a", "b"}), *symbols_), "{a, b}");
  EXPECT_EQ(AnswerToString(Ans({}), *symbols_), "{}");
}

// -------------------------------------------- PartitioningHandler (Alg 1).

TEST_F(StreamRuleTest, PartitionRoutesByPlan) {
  PartitioningPlan plan(2);
  plan.Assign(Sig("p", 1), 0);
  plan.Assign(Sig("q", 1), 1);
  PartitioningHandler handler(plan);

  const std::vector<Atom> window = {A("p(1)"), A("q(2)"), A("p(3)")};
  const auto partitions = handler.PartitionFacts(window);
  ASSERT_EQ(partitions.size(), 2u);
  EXPECT_EQ(partitions[0].size(), 2u);
  EXPECT_EQ(partitions[1].size(), 1u);
  EXPECT_EQ(handler.stray_items(), 0u);
}

TEST_F(StreamRuleTest, PartitionDuplicatesSharedPredicates) {
  PartitioningPlan plan(2);
  plan.Assign(Sig("shared", 1), 0);
  plan.Assign(Sig("shared", 1), 1);
  plan.Assign(Sig("solo", 1), 0);
  PartitioningHandler handler(plan);

  const std::vector<Atom> window = {A("shared(1)"), A("solo(2)")};
  const auto partitions = handler.PartitionFacts(window);
  EXPECT_EQ(partitions[0].size(), 2u);
  EXPECT_EQ(partitions[1].size(), 1u);
  EXPECT_EQ(partitions[1][0], A("shared(1)"));
}

TEST_F(StreamRuleTest, PartitionStraysGoToCommunityZero) {
  PartitioningPlan plan(2);
  plan.Assign(Sig("known", 1), 1);
  PartitioningHandler handler(plan);

  const std::vector<Atom> window = {A("mystery(9)"), A("known(1)")};
  const auto partitions = handler.PartitionFacts(window);
  EXPECT_EQ(partitions[0].size(), 1u);
  EXPECT_EQ(partitions[1].size(), 1u);
  EXPECT_EQ(handler.stray_items(), 1u);
}

TEST_F(StreamRuleTest, PartitionTriplesMatchesArity) {
  // traffic_light arrives object-less => signature arity 1.
  PartitioningPlan plan(2);
  plan.Assign(Sig("traffic_light", 1), 1);
  plan.Assign(Sig("average_speed", 2), 0);
  PartitioningHandler handler(plan);

  std::vector<Triple> window = {
      Triple{Term::Integer(1), symbols_->Intern("average_speed"),
             Term::Integer(10)},
      Triple{Term::Integer(1), symbols_->Intern("traffic_light"),
             std::nullopt}};
  const auto partitions = handler.Partition(window);
  EXPECT_EQ(partitions[0].size(), 1u);
  EXPECT_EQ(partitions[1].size(), 1u);
  EXPECT_EQ(handler.stray_items(), 0u);
}

TEST_F(StreamRuleTest, PartitionPreservesEveryItemSomewhere) {
  PartitioningPlan plan(3);
  plan.Assign(Sig("a", 1), 0);
  plan.Assign(Sig("b", 1), 1);
  plan.Assign(Sig("c", 1), 2);
  PartitioningHandler handler(plan);
  std::vector<Atom> window;
  for (int i = 0; i < 30; ++i) {
    window.push_back(A((i % 3 == 0 ? "a(" : i % 3 == 1 ? "b(" : "c(") +
                       std::to_string(i) + ")"));
  }
  const auto partitions = handler.PartitionFacts(window);
  size_t total = 0;
  for (const auto& p : partitions) total += p.size();
  EXPECT_EQ(total, window.size());
}

// ------------------------------------------------------ RandomPartitioner.

TEST_F(StreamRuleTest, RandomPartitionCoversWindow) {
  RandomPartitioner partitioner(4, 123);
  std::vector<Atom> window;
  for (int i = 0; i < 100; ++i) window.push_back(A("p(" + std::to_string(i) + ")"));
  const auto partitions = partitioner.PartitionFacts(window);
  ASSERT_EQ(partitions.size(), 4u);
  size_t total = 0;
  for (const auto& p : partitions) total += p.size();
  EXPECT_EQ(total, 100u);
}

TEST_F(StreamRuleTest, RandomPartitionIsDeterministicPerSeed) {
  std::vector<Atom> window;
  for (int i = 0; i < 50; ++i) window.push_back(A("p(" + std::to_string(i) + ")"));
  RandomPartitioner a(3, 9), b(3, 9);
  EXPECT_EQ(a.PartitionFacts(window), b.PartitionFacts(window));
}

TEST_F(StreamRuleTest, RandomPartitionKClampedToOne) {
  RandomPartitioner partitioner(0);
  EXPECT_EQ(partitioner.k(), 1u);
}

// -------------------------------------------------------- CombiningHandler.

TEST_F(StreamRuleTest, CombineSingleAnswersUnions) {
  CombiningHandler combiner;
  StatusOr<std::vector<GroundAnswer>> combined = combiner.Combine(
      {{Ans({"a"})}, {Ans({"b"})}});
  ASSERT_TRUE(combined.ok());
  ASSERT_EQ(combined->size(), 1u);
  EXPECT_EQ((*combined)[0], Ans({"a", "b"}));
}

TEST_F(StreamRuleTest, CombineCrossProduct) {
  CombiningHandler combiner;
  StatusOr<std::vector<GroundAnswer>> combined = combiner.Combine(
      {{Ans({"a1"}), Ans({"a2"})}, {Ans({"b1"}), Ans({"b2"})}});
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->size(), 4u);
}

TEST_F(StreamRuleTest, CombineDeduplicatesEqualUnions) {
  CombiningHandler combiner;
  StatusOr<std::vector<GroundAnswer>> combined = combiner.Combine(
      {{Ans({"a"}), Ans({"a"})}, {Ans({"b"})}});
  ASSERT_TRUE(combined.ok());
  EXPECT_EQ(combined->size(), 1u);
}

TEST_F(StreamRuleTest, CombineEmptyPartitionListYieldsEmptyUnion) {
  CombiningHandler combiner;
  StatusOr<std::vector<GroundAnswer>> combined = combiner.Combine({});
  ASSERT_TRUE(combined.ok());
  ASSERT_EQ(combined->size(), 1u);
  EXPECT_TRUE((*combined)[0].empty());
}

TEST_F(StreamRuleTest, CombineInconsistentPartitionKillsAllAnswers) {
  CombiningHandler combiner;
  StatusOr<std::vector<GroundAnswer>> combined = combiner.Combine(
      {{Ans({"a"})}, {}});
  ASSERT_TRUE(combined.ok());
  EXPECT_TRUE(combined->empty());
}

TEST_F(StreamRuleTest, CombineRespectsCap) {
  CombiningOptions options;
  options.max_combined_answers = 3;
  CombiningHandler combiner(options);
  std::vector<GroundAnswer> many;
  for (int i = 0; i < 10; ++i) many.push_back(Ans({("p(" + std::to_string(i) + ")").c_str()}));
  StatusOr<std::vector<GroundAnswer>> combined =
      combiner.Combine({many, many});
  ASSERT_TRUE(combined.ok());
  EXPECT_LE(combined->size(), 3u);
}

// ---------------------------------------------------------------- Accuracy.

TEST_F(StreamRuleTest, AccuracyIdenticalAnswersIsOne) {
  const std::vector<GroundAnswer> reference = {Ans({"a", "b"})};
  EXPECT_DOUBLE_EQ(AnswerAccuracy(Ans({"a", "b"}), reference), 1.0);
  EXPECT_DOUBLE_EQ(MeanAccuracy(reference, reference), 1.0);
}

TEST_F(StreamRuleTest, AccuracyMissingAtomsLowersRecall) {
  const std::vector<GroundAnswer> reference = {Ans({"a", "b", "c", "d"})};
  EXPECT_DOUBLE_EQ(AnswerAccuracy(Ans({"a", "b"}), reference), 0.5);
}

TEST_F(StreamRuleTest, AccuracySpuriousAtomsDoNotLowerRecall) {
  // The paper's metric is recall-shaped: extra atoms in the PR answer are
  // not penalized.
  const std::vector<GroundAnswer> reference = {Ans({"a"})};
  EXPECT_DOUBLE_EQ(AnswerAccuracy(Ans({"a", "zz"}), reference), 1.0);
}

TEST_F(StreamRuleTest, AccuracyTakesBestReference) {
  const std::vector<GroundAnswer> reference = {Ans({"a", "b"}),
                                               Ans({"c", "d"})};
  EXPECT_DOUBLE_EQ(AnswerAccuracy(Ans({"c", "d"}), reference), 1.0);
  EXPECT_DOUBLE_EQ(AnswerAccuracy(Ans({"a", "c"}), reference), 0.5);
}

TEST_F(StreamRuleTest, AccuracyDegenerateCases) {
  EXPECT_DOUBLE_EQ(AnswerAccuracy(Ans({}), {}), 1.0);
  EXPECT_DOUBLE_EQ(AnswerAccuracy(Ans({"a"}), {}), 0.0);
  EXPECT_DOUBLE_EQ(AnswerAccuracy(Ans({"a"}), {Ans({})}), 1.0);
  EXPECT_DOUBLE_EQ(MeanAccuracy({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(MeanAccuracy({}, {Ans({"a"})}), 0.0);
}

TEST_F(StreamRuleTest, MeanAccuracyAverages) {
  const std::vector<GroundAnswer> reference = {Ans({"a", "b"})};
  const std::vector<GroundAnswer> pr = {Ans({"a", "b"}), Ans({"a"})};
  EXPECT_DOUBLE_EQ(MeanAccuracy(pr, reference), 0.75);
}

}  // namespace
}  // namespace streamasp
