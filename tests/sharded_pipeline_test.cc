// The sharded multi-pipeline engine: differential shard-count invariance
// against the single-pipeline synchronous oracle, skewed-key worst cases,
// ordered merge delivery, flush/drain semantics, and stats aggregation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "stream/generator.h"
#include "stream/shard_key.h"
#include "streamrule/pipeline.h"
#include "streamrule/sharded_pipeline.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class ShardedPipelineTest : public ::testing::Test {
 protected:
  ShardedPipelineTest() : symbols_(MakeSymbolTable()) {}

  std::vector<Triple> MakeStream(size_t items, uint64_t seed = 2017) {
    GeneratorOptions options;
    options.seed = seed;
    SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), options);
    return generator.GenerateWindow(items);
  }

  // One transcript line per delivered window: sequence, size, and every
  // answer set, byte for byte — the common currency for the differential
  // comparisons. Also asserts the strict emission-order invariant.
  std::string SyncOracleTranscript(const Program& program, size_t window_size,
                                   const std::vector<Triple>& stream,
                                   PipelineStats* stats_out = nullptr) {
    std::string transcript;
    int64_t last_sequence = -1;
    PipelineOptions options;
    options.window_size = window_size;
    options.async = false;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              EXPECT_GT(static_cast<int64_t>(window.sequence), last_sequence);
              last_sequence = static_cast<int64_t>(window.sequence);
              AppendLine(&transcript, window, result);
            });
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    (*pipeline)->PushBatch(stream);
    (*pipeline)->Flush();
    if (stats_out != nullptr) *stats_out = (*pipeline)->stats();
    return transcript;
  }

  std::string ShardedTranscript(const Program& program,
                                ShardedPipelineOptions options,
                                const std::vector<Triple>& stream,
                                ShardedPipelineStats* stats_out = nullptr) {
    std::string transcript;
    int64_t last_sequence = -1;
    StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
        ShardedPipelineEngine::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              // The ordered merge's contract: strictly increasing global
              // sequences no matter how shards race.
              EXPECT_GT(static_cast<int64_t>(window.sequence), last_sequence);
              last_sequence = static_cast<int64_t>(window.sequence);
              AppendLine(&transcript, window, result);
            });
    EXPECT_TRUE(engine.ok()) << engine.status();
    (*engine)->PushBatch(stream);
    (*engine)->Flush();
    if (stats_out != nullptr) *stats_out = (*engine)->stats();
    return transcript;
  }

  void AppendLine(std::string* transcript, const TripleWindow& window,
                  const ParallelReasonerResult& result) {
    *transcript += "#" + std::to_string(window.sequence) + "[" +
                   std::to_string(window.size()) + "]:";
    for (const GroundAnswer& answer : result.answers) {
      *transcript += " " + AnswerToString(answer, *symbols_);
    }
    *transcript += "\n";
  }

  SymbolTablePtr symbols_;
};

TEST_F(ShardedPipelineTest, ShardCountInvariantAgainstSyncOracle) {
  // The acceptance bar: for every shard count, the merged stream of
  // answers is byte-identical to the unsharded synchronous oracle —
  // subject sharding is dependency-respecting for the traffic workload,
  // and the router's aligned global windows make window boundaries (and
  // thus window contents) shard-count-invariant.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(5300);  // 10 full + trailer.

  PipelineStats oracle_stats;
  const std::string oracle =
      SyncOracleTranscript(*program, 500, stream, &oracle_stats);
  ASSERT_FALSE(oracle.empty());
  ASSERT_EQ(oracle_stats.windows, 11u);

  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedPipelineOptions options;
    options.num_shards = shards;
    options.pipeline.window_size = 500;
    options.pipeline.async = true;
    options.pipeline.max_inflight_windows = 4;

    ShardedPipelineStats stats;
    EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);
    EXPECT_EQ(stats.merged_windows, oracle_stats.windows);
    EXPECT_EQ(stats.merged_answers, oracle_stats.answers);
    EXPECT_EQ(stats.merge_errors, 0u);
    EXPECT_EQ(stats.aggregate.errors, 0u);
    // Every routed item ends up in exactly one shard sub-window.
    EXPECT_EQ(stats.aggregate.items, oracle_stats.items);
    EXPECT_EQ(std::accumulate(stats.routed_items.begin(),
                              stats.routed_items.end(), uint64_t{0}),
              oracle_stats.items);
  }
}

TEST_F(ShardedPipelineTest, ConnectedVariantWithDuplicationStaysInvariant) {
  // P' exercises Louvain + duplicated predicates inside every shard's
  // ParallelReasoner while the cross-shard merge runs on top.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(3000, /*seed=*/7);

  const std::string oracle = SyncOracleTranscript(*program, 400, stream);
  for (const size_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedPipelineOptions options;
    options.num_shards = shards;
    options.pipeline.window_size = 400;
    options.pipeline.async = true;
    options.pipeline.max_inflight_windows = 4;
    EXPECT_EQ(ShardedTranscript(*program, options, stream), oracle);
  }
}

TEST_F(ShardedPipelineTest, SynchronousShardPipelinesAlsoMatch) {
  // Inner async=false runs each shard's reasoning on its feeder thread:
  // still N-way parallel across shards, still byte-identical.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(2500, /*seed=*/11);

  const std::string oracle = SyncOracleTranscript(*program, 300, stream);
  ShardedPipelineOptions options;
  options.num_shards = 3;
  options.pipeline.window_size = 300;
  options.pipeline.async = false;
  EXPECT_EQ(ShardedTranscript(*program, options, stream), oracle);
}

TEST_F(ShardedPipelineTest, CommunityShardKeyMatchesOracleWithoutDuplication) {
  // Dependency-graph-derived keys: P's input dependency graph is
  // disconnected, so its plan has no duplicated predicates and routing
  // whole communities to shards is answer-preserving by the paper's
  // decomposition theorem.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(2000, /*seed=*/3);

  const std::string oracle = SyncOracleTranscript(*program, 250, stream);

  // Build the plan the same way the pipeline does, then shard by it.
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program, InputDependencyOptions{});
  ASSERT_TRUE(graph.ok());
  DecompositionInfo info;
  StatusOr<PartitioningPlan> plan =
      DecomposeInputDependencyGraph(*graph, DecompositionOptions{}, &info);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->DuplicatedPredicates().empty());

  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.shard_key = CommunityShardKey(*plan);
  options.pipeline.window_size = 250;
  options.pipeline.async = true;
  EXPECT_EQ(ShardedTranscript(*program, options, stream), oracle);
}

TEST_F(ShardedPipelineTest, SkewedKeyRoutesEverythingToOneShardCorrectly) {
  // Worst-case skew: a constant key sends the entire stream to shard 0.
  // Ordering, answers and accounting must all hold with the other shards
  // idle — this also exercises the pending==window_size punctuation edge
  // (a sub-window that IS the whole global window).
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(2100, /*seed=*/13);

  PipelineStats oracle_stats;
  const std::string oracle =
      SyncOracleTranscript(*program, 400, stream, &oracle_stats);

  ShardedPipelineOptions options;
  options.num_shards = 4;
  options.shard_key = ConstantShardKey();
  options.pipeline.window_size = 400;
  options.pipeline.async = true;
  options.pipeline.max_inflight_windows = 4;

  ShardedPipelineStats stats;
  EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);

  ASSERT_EQ(stats.routed_items.size(), 4u);
  EXPECT_EQ(stats.routed_items[0], oracle_stats.items);
  EXPECT_EQ(stats.routed_items[1], 0u);
  EXPECT_EQ(stats.routed_items[2], 0u);
  EXPECT_EQ(stats.routed_items[3], 0u);
  ASSERT_EQ(stats.per_shard.size(), 4u);
  EXPECT_EQ(stats.per_shard[0].windows, oracle_stats.windows);
  EXPECT_EQ(stats.per_shard[1].windows, 0u);
  EXPECT_EQ(stats.merged_windows, oracle_stats.windows);
  EXPECT_EQ(stats.merge_errors, 0u);
}

TEST_F(ShardedPipelineTest, StatsAggregateAcrossShards) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  ShardedPipelineOptions options;
  options.num_shards = 4;
  options.pipeline.window_size = 300;
  options.pipeline.async = true;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [](const TripleWindow&, const ParallelReasonerResult&) {});
  ASSERT_TRUE(engine.ok()) << engine.status();

  (*engine)->PushBatch(MakeStream(1500));
  (*engine)->Flush();

  const ShardedPipelineStats stats = (*engine)->stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  uint64_t windows = 0;
  uint64_t items = 0;
  for (const PipelineStats& shard : stats.per_shard) {
    windows += shard.windows;
    items += shard.items;
  }
  EXPECT_EQ(stats.aggregate.windows, windows);
  EXPECT_EQ(stats.aggregate.items, items);
  EXPECT_EQ(items, 1500u);
  EXPECT_EQ(stats.merged_windows, 5u);  // 1500 / 300 global windows.
  EXPECT_EQ(std::accumulate(stats.routed_items.begin(),
                            stats.routed_items.end(), uint64_t{0}),
            1500u);
  EXPECT_EQ(stats.filtered_items, 0u);
  // Sub-window count >= global windows (each global window splits into
  // at least one non-empty sub-window) and <= shards * global windows.
  EXPECT_GE(windows, stats.merged_windows);
  EXPECT_LE(windows, 4 * stats.merged_windows);
}

TEST_F(ShardedPipelineTest, FlushDrainsAndEngineStaysUsable) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> callbacks{0};
  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.pipeline.window_size = 300;
  options.pipeline.async = true;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [&](const TripleWindow&, const ParallelReasonerResult&) {
            ++callbacks;
          });
  ASSERT_TRUE(engine.ok()) << engine.status();

  (*engine)->PushBatch(MakeStream(900));
  (*engine)->Flush();
  EXPECT_EQ(callbacks.load(), 3u);
  EXPECT_EQ((*engine)->stats().merged_windows, 3u);

  // The engine keeps running after a flush.
  (*engine)->PushBatch(MakeStream(600, /*seed=*/5));
  (*engine)->Flush();
  EXPECT_EQ(callbacks.load(), 5u);
}

TEST_F(ShardedPipelineTest, DestructorDrainsAdmittedGlobalWindows) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> callbacks{0};
  {
    ShardedPipelineOptions options;
    options.num_shards = 2;
    options.pipeline.window_size = 200;
    options.pipeline.async = true;
    options.pipeline.max_inflight_windows = 8;
    StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
        ShardedPipelineEngine::Create(
            &*program, options,
            [&](const TripleWindow&, const ParallelReasonerResult&) {
              ++callbacks;
            });
    ASSERT_TRUE(engine.ok()) << engine.status();
    // 4 closed global windows + 100 items of partial window that was
    // never assigned: the destructor must deliver exactly the closed 4.
    (*engine)->PushBatch(MakeStream(900));
  }
  EXPECT_EQ(callbacks.load(), 4u);
}

TEST_F(ShardedPipelineTest, CreateValidatesOptions) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const ShardedPipelineEngine::ResultCallback callback =
      [](const TripleWindow&, const ParallelReasonerResult&) {};

  ShardedPipelineOptions zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(&*program, zero_shards, callback).ok());

  ShardedPipelineOptions shedding;
  shedding.pipeline.backpressure = BackpressurePolicy::kDropOldest;
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(&*program, shedding, callback).ok());

  ShardedPipelineOptions ok_options;
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(nullptr, ok_options, callback).ok());
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(&*program, ok_options, nullptr).ok());
}

TEST_F(ShardedPipelineTest, FailedSubWindowsSkipTheirSlotInsteadOfStalling) {
  // Force every sub-window's reasoning to fail (grounding resource limit)
  // with SYNCHRONOUS inner pipelines: the error deliveries must consume
  // their merge slots so Flush drains instead of hanging, and the merged
  // windows are skipped and counted — the engine's error discipline.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> callbacks{0};
  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.pipeline.window_size = 200;
  options.pipeline.async = false;
  options.pipeline.reasoner.reasoner.grounding.max_ground_rules = 1;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [&](const TripleWindow&, const ParallelReasonerResult&) {
            ++callbacks;
          });
  ASSERT_TRUE(engine.ok()) << engine.status();

  (*engine)->PushBatch(MakeStream(600));  // Three global windows.
  (*engine)->Flush();                     // Must not hang.

  EXPECT_EQ(callbacks.load(), 0u);
  const ShardedPipelineStats stats = (*engine)->stats();
  EXPECT_EQ(stats.merged_windows, 0u);
  EXPECT_EQ(stats.merge_errors, 3u);
  EXPECT_GE(stats.aggregate.errors, 3u);  // Per-sub-window failures.
}

TEST_F(ShardedPipelineTest, ThrowingCallbackIsCountedNotFatal) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> delivered{0};
  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.pipeline.window_size = 250;
  options.pipeline.async = true;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [&](const TripleWindow& window, const ParallelReasonerResult&) {
            if (window.sequence == 0) throw std::runtime_error("boom");
            ++delivered;
          });
  ASSERT_TRUE(engine.ok()) << engine.status();

  (*engine)->PushBatch(MakeStream(750));  // Three global windows.
  (*engine)->Flush();

  EXPECT_EQ(delivered.load(), 2u);  // Windows 1 and 2 still arrive.
  const ShardedPipelineStats stats = (*engine)->stats();
  EXPECT_EQ(stats.merge_errors, 1u);
  EXPECT_EQ(stats.merged_windows, 2u);
}

}  // namespace
}  // namespace streamasp
