// The sharded multi-pipeline engine: differential shard-count invariance
// against the single-pipeline synchronous oracle, skewed-key worst cases,
// ordered merge delivery, flush/drain semantics, and stats aggregation.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <string>
#include <vector>

#include "asp/parser.h"
#include "stream/generator.h"
#include "stream/shard_key.h"
#include "streamrule/pipeline.h"
#include "streamrule/sharded_pipeline.h"
#include "streamrule/traffic_workload.h"

namespace streamasp {
namespace {

class ShardedPipelineTest : public ::testing::Test {
 protected:
  ShardedPipelineTest() : symbols_(MakeSymbolTable()) {}

  std::vector<Triple> MakeStream(size_t items, uint64_t seed = 2017) {
    GeneratorOptions options;
    options.seed = seed;
    SyntheticStreamGenerator generator(MakeTrafficSchema(*symbols_), options);
    return generator.GenerateWindow(items);
  }

  // One transcript line per delivered window: sequence, size, and every
  // answer set, byte for byte — the common currency for the differential
  // comparisons. Also asserts the strict emission-order invariant.
  std::string SyncOracleTranscript(const Program& program, size_t window_size,
                                   const std::vector<Triple>& stream,
                                   PipelineStats* stats_out = nullptr,
                                   size_t window_slide = 0) {
    std::string transcript;
    int64_t last_sequence = -1;
    PipelineOptions options;
    options.window_size = window_size;
    options.window_slide = window_slide;
    options.async = false;
    StatusOr<std::unique_ptr<StreamRulePipeline>> pipeline =
        StreamRulePipeline::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              EXPECT_GT(static_cast<int64_t>(window.sequence), last_sequence);
              last_sequence = static_cast<int64_t>(window.sequence);
              AppendLine(&transcript, window, result);
            });
    EXPECT_TRUE(pipeline.ok()) << pipeline.status();
    (*pipeline)->PushBatch(stream);
    (*pipeline)->Flush();
    if (stats_out != nullptr) *stats_out = (*pipeline)->stats();
    return transcript;
  }

  std::string ShardedTranscript(const Program& program,
                                ShardedPipelineOptions options,
                                const std::vector<Triple>& stream,
                                ShardedPipelineStats* stats_out = nullptr) {
    std::string transcript;
    int64_t last_sequence = -1;
    StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
        ShardedPipelineEngine::Create(
            &program, options,
            [&](const TripleWindow& window,
                const ParallelReasonerResult& result) {
              // The ordered merge's contract: strictly increasing global
              // sequences no matter how shards race.
              EXPECT_GT(static_cast<int64_t>(window.sequence), last_sequence);
              last_sequence = static_cast<int64_t>(window.sequence);
              AppendLine(&transcript, window, result);
            });
    EXPECT_TRUE(engine.ok()) << engine.status();
    (*engine)->PushBatch(stream);
    (*engine)->Flush();
    if (stats_out != nullptr) *stats_out = (*engine)->stats();
    return transcript;
  }

  void AppendLine(std::string* transcript, const TripleWindow& window,
                  const ParallelReasonerResult& result) {
    *transcript += "#" + std::to_string(window.sequence) + "[" +
                   std::to_string(window.size()) + "]:";
    for (const GroundAnswer& answer : result.answers) {
      *transcript += " " + AnswerToString(answer, *symbols_);
    }
    *transcript += "\n";
  }

  SymbolTablePtr symbols_;
};

TEST_F(ShardedPipelineTest, ShardCountInvariantAgainstSyncOracle) {
  // The acceptance bar: for every shard count, the merged stream of
  // answers is byte-identical to the unsharded synchronous oracle —
  // subject sharding is dependency-respecting for the traffic workload,
  // and the router's aligned global windows make window boundaries (and
  // thus window contents) shard-count-invariant.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(5300);  // 10 full + trailer.

  PipelineStats oracle_stats;
  const std::string oracle =
      SyncOracleTranscript(*program, 500, stream, &oracle_stats);
  ASSERT_FALSE(oracle.empty());
  ASSERT_EQ(oracle_stats.windows, 11u);

  for (const size_t shards : {1u, 2u, 4u, 8u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedPipelineOptions options;
    options.num_shards = shards;
    options.pipeline.window_size = 500;
    options.pipeline.async = true;
    options.pipeline.max_inflight_windows = 4;

    ShardedPipelineStats stats;
    EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);
    EXPECT_EQ(stats.merged_windows, oracle_stats.windows);
    EXPECT_EQ(stats.merged_answers, oracle_stats.answers);
    EXPECT_EQ(stats.merge_errors, 0u);
    EXPECT_EQ(stats.aggregate.errors, 0u);
    // Every routed item ends up in exactly one shard sub-window.
    EXPECT_EQ(stats.aggregate.items, oracle_stats.items);
    EXPECT_EQ(std::accumulate(stats.routed_items.begin(),
                              stats.routed_items.end(), uint64_t{0}),
              oracle_stats.items);
  }
}

TEST_F(ShardedPipelineTest, ConnectedVariantWithDuplicationStaysInvariant) {
  // P' exercises Louvain + duplicated predicates inside every shard's
  // ParallelReasoner while the cross-shard merge runs on top. At the
  // router level the duplicated predicate (car_number) is broadcast to
  // every shard, which is what makes r7's cross-shard join
  // (car_fire(X), many_cars(X)) exact regardless of how subjects hash
  // — tests/engine_test.cc covers the case that needs it.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kPPrime, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(3000, /*seed=*/7);

  const std::string oracle = SyncOracleTranscript(*program, 400, stream);
  for (const size_t shards : {2u, 4u}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedPipelineOptions options;
    options.num_shards = shards;
    options.pipeline.window_size = 400;
    options.pipeline.async = true;
    options.pipeline.max_inflight_windows = 4;
    EXPECT_EQ(ShardedTranscript(*program, options, stream), oracle);
  }
}

TEST_F(ShardedPipelineTest, SynchronousShardPipelinesAlsoMatch) {
  // Inner async=false runs each shard's reasoning on its feeder thread:
  // still N-way parallel across shards, still byte-identical.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(2500, /*seed=*/11);

  const std::string oracle = SyncOracleTranscript(*program, 300, stream);
  ShardedPipelineOptions options;
  options.num_shards = 3;
  options.pipeline.window_size = 300;
  options.pipeline.async = false;
  EXPECT_EQ(ShardedTranscript(*program, options, stream), oracle);
}

TEST_F(ShardedPipelineTest, CommunityShardKeyMatchesOracleWithoutDuplication) {
  // Dependency-graph-derived keys: P's input dependency graph is
  // disconnected, so its plan has no duplicated predicates and routing
  // whole communities to shards is answer-preserving by the paper's
  // decomposition theorem.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(2000, /*seed=*/3);

  const std::string oracle = SyncOracleTranscript(*program, 250, stream);

  // Build the plan the same way the pipeline does, then shard by it.
  StatusOr<InputDependencyGraph> graph =
      InputDependencyGraph::Build(*program, InputDependencyOptions{});
  ASSERT_TRUE(graph.ok());
  DecompositionInfo info;
  StatusOr<PartitioningPlan> plan =
      DecomposeInputDependencyGraph(*graph, DecompositionOptions{}, &info);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(plan->DuplicatedPredicates().empty());

  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.shard_key = CommunityShardKey(*plan);
  options.pipeline.window_size = 250;
  options.pipeline.async = true;
  EXPECT_EQ(ShardedTranscript(*program, options, stream), oracle);
}

TEST_F(ShardedPipelineTest, SkewedKeyRoutesEverythingToOneShardCorrectly) {
  // Worst-case skew: a constant key sends the entire stream to shard 0.
  // Ordering, answers and accounting must all hold with the other shards
  // idle — this also exercises the pending==window_size punctuation edge
  // (a sub-window that IS the whole global window).
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(2100, /*seed=*/13);

  PipelineStats oracle_stats;
  const std::string oracle =
      SyncOracleTranscript(*program, 400, stream, &oracle_stats);

  ShardedPipelineOptions options;
  options.num_shards = 4;
  options.shard_key = ConstantShardKey();
  options.pipeline.window_size = 400;
  options.pipeline.async = true;
  options.pipeline.max_inflight_windows = 4;

  ShardedPipelineStats stats;
  EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);

  ASSERT_EQ(stats.routed_items.size(), 4u);
  EXPECT_EQ(stats.routed_items[0], oracle_stats.items);
  EXPECT_EQ(stats.routed_items[1], 0u);
  EXPECT_EQ(stats.routed_items[2], 0u);
  EXPECT_EQ(stats.routed_items[3], 0u);
  ASSERT_EQ(stats.per_shard.size(), 4u);
  EXPECT_EQ(stats.per_shard[0].windows, oracle_stats.windows);
  EXPECT_EQ(stats.per_shard[1].windows, 0u);
  EXPECT_EQ(stats.merged_windows, oracle_stats.windows);
  EXPECT_EQ(stats.merge_errors, 0u);
}

TEST_F(ShardedPipelineTest, SlidingGlobalWindowsMatchSyncOracle) {
  // The sliding tentpole: router delta punctuation must keep the merged
  // transcript byte-identical to the unsharded sliding oracle across
  // slide sizes (including slide == window, the tumbling full-replacement
  // edge), programs P and P', shard counts 1/2/4, and with the full
  // reuse stack (reuse_solving implies reuse_grounding) on or off.
  // (P''s r7 joins car-subject and location-subject items, so subject
  // sharding is only stream-dependently respecting for it — these fixed
  // seeds, like the tumbling P' differentials', never co-locate a
  // cross-shard join opportunity in one window.)
  for (const TrafficProgramVariant variant :
       {TrafficProgramVariant::kP, TrafficProgramVariant::kPPrime}) {
    StatusOr<Program> program =
        MakeTrafficProgram(symbols_, variant, /*with_show=*/true);
    ASSERT_TRUE(program.ok());
    const std::vector<Triple> stream = MakeStream(
        1200, variant == TrafficProgramVariant::kP ? 2017 : 7);
    for (const size_t slide : {size_t{40}, size_t{100}, size_t{200}}) {
      const std::string oracle = SyncOracleTranscript(
          *program, /*window_size=*/200, stream, nullptr, slide);
      ASSERT_FALSE(oracle.empty());
      for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
        for (const bool reuse : {false, true}) {
          SCOPED_TRACE("variant=" + std::to_string(static_cast<int>(variant)) +
                       " slide=" + std::to_string(slide) +
                       " shards=" + std::to_string(shards) +
                       (reuse ? " +reuse" : ""));
          ShardedPipelineOptions options;
          options.num_shards = shards;
          options.pipeline.window_size = 200;
          options.pipeline.window_slide = slide;
          options.pipeline.reuse_solving = reuse;
          ShardedPipelineStats stats;
          EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats),
                    oracle);
          EXPECT_EQ(stats.merge_errors, 0u);
          if (slide < 200) {
            EXPECT_GT(stats.delta_punctuations, 0u);
            if (reuse && slide == 40) {
              // At the high-overlap slide the routed slices of the delta
              // stay under the grounder's fallback fraction, so the
              // persistent engines must actually patch, not rebuild.
              // (slide == 100 turns over half the window, whose ~2×slide
              // delta magnitude exceeds the fallback fraction — the
              // caches legitimately rebuild, still byte-identical above.)
              EXPECT_GT(stats.aggregate.incremental_solve_windows, 0u);
              EXPECT_GT(stats.aggregate.grounding_rules_retained, 0u);
            }
          } else {
            // slide == window is the tumbling full-replacement path: the
            // router keeps disjoint punctuation, no deltas travel.
            EXPECT_EQ(stats.delta_punctuations, 0u);
          }
        }
      }
    }
  }
}

TEST_F(ShardedPipelineTest, SlidingSmallSlidesPunctuateEmptyDeltas) {
  // slide ≪ shards × churn: most boundaries change only one or two
  // shards' slices, so the other contributing shards are punctuated with
  // EMPTY deltas (retain everything) — and the transcript must still
  // match the oracle exactly.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(700, /*seed=*/23);

  const std::string oracle = SyncOracleTranscript(
      *program, /*window_size=*/120, stream, nullptr, /*window_slide=*/10);

  ShardedPipelineOptions options;
  options.num_shards = 4;
  options.pipeline.window_size = 120;
  options.pipeline.window_slide = 10;
  options.pipeline.reuse_solving = true;
  ShardedPipelineStats stats;
  EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);
  // Punctuations outnumber boundaries (several shards per boundary), and
  // boundaries outnumber slices that changed — i.e. empty-delta
  // punctuations really occurred.
  EXPECT_GT(stats.delta_punctuations, stats.merged_windows);
  uint64_t admitted_total = 0;
  for (const PipelineStats& shard : stats.per_shard) {
    admitted_total += shard.windows;
  }
  EXPECT_EQ(admitted_total, stats.delta_punctuations);
}

TEST_F(ShardedPipelineTest, SlidingDuplicateTriplesExpireAcrossBoundaries) {
  // Duplicate stream items: the multiset delta contract says each
  // occurrence expires positionally. Doubling every triple guarantees
  // duplicates live in the same window and expire across boundaries.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> base = MakeStream(300, /*seed=*/5);
  std::vector<Triple> stream;
  stream.reserve(base.size() * 2);
  for (const Triple& t : base) {
    stream.push_back(t);
    stream.push_back(t);
  }

  const std::string oracle = SyncOracleTranscript(
      *program, /*window_size=*/100, stream, nullptr, /*window_slide=*/20);

  for (const size_t shards : {size_t{2}, size_t{4}}) {
    SCOPED_TRACE("shards=" + std::to_string(shards));
    ShardedPipelineOptions options;
    options.num_shards = shards;
    options.pipeline.window_size = 100;
    options.pipeline.window_slide = 20;
    options.pipeline.reuse_solving = true;
    ShardedPipelineStats stats;
    EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);
    EXPECT_EQ(stats.merge_errors, 0u);
    EXPECT_GT(stats.delta_punctuations, 0u);
  }
}

TEST_F(ShardedPipelineTest, SlidingShardWithAdmissionsButNoExpirations) {
  // A phased stream steered by an object-valued shard key: shard 1 is
  // empty for the first phase (admissions, no expirations when its items
  // start), then shard 0's items age out completely (boundaries skip it,
  // its expirations fold until it contributes again in phase 3).
  Parser parser(symbols_);
  StatusOr<Program> program = parser.ParseProgram(R"(
    #input p/2.
    q(X, Y) :- p(X, Y).
    #show q/2.
  )");
  ASSERT_TRUE(program.ok()) << program.status();

  const SymbolId p = symbols_->Intern("p");
  auto item = [&](int64_t subject, int64_t object) {
    return Triple{Term::Integer(subject), p, Term::Integer(object)};
  };
  std::vector<Triple> stream;
  for (int64_t i = 0; i < 60; ++i) stream.push_back(item(i, 0));       // shard 0
  for (int64_t i = 0; i < 80; ++i) stream.push_back(item(100 + i, 1)); // shard 1
  for (int64_t i = 0; i < 40; ++i) stream.push_back(item(200 + i, 0)); // shard 0

  const std::string oracle = SyncOracleTranscript(
      *program, /*window_size=*/40, stream, nullptr, /*window_slide=*/8);

  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.shard_key = [](const Triple& t) {
    return static_cast<uint64_t>(t.object->integer_value());
  };
  options.pipeline.window_size = 40;
  options.pipeline.window_slide = 8;
  options.pipeline.reuse_solving = true;
  ShardedPipelineStats stats;
  EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);
  EXPECT_EQ(stats.merge_errors, 0u);
  // Phase 2 drains shard 0's slice entirely: boundaries must have
  // skipped it while its expirations folded.
  EXPECT_GT(stats.skipped_empty_slices, 0u);
  EXPECT_GT(stats.delta_punctuations, 0u);
  ASSERT_EQ(stats.routed_items.size(), 2u);
  EXPECT_EQ(stats.routed_items[0], 100u);
  EXPECT_EQ(stats.routed_items[1], 80u);
}

TEST_F(ShardedPipelineTest, SlidingFlushBeforeFirstFillEmitsPartialWindow) {
  // A stream shorter than the global window: no boundary ever fires, so
  // Flush must emit the retained partial window exactly like the
  // unsharded sliding windower does (admitted == items, no expirations).
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(90, /*seed=*/31);

  const std::string oracle = SyncOracleTranscript(
      *program, /*window_size=*/200, stream, nullptr, /*window_slide=*/50);
  ASSERT_FALSE(oracle.empty());

  ShardedPipelineOptions options;
  options.num_shards = 3;
  options.pipeline.window_size = 200;
  options.pipeline.window_slide = 50;
  options.pipeline.reuse_solving = true;
  ShardedPipelineStats stats;
  EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);
  EXPECT_EQ(stats.merged_windows, 1u);
}

TEST_F(ShardedPipelineTest, SlidingWithAsyncInnerPipelinesMatchesOracle) {
  // Async inner pipelines put several delta-carrying sub-windows in
  // flight per shard; each worker's grounders see every Nth sub-window,
  // reject the stale delta hints, and snapshot-diff instead — the
  // transcript must stay byte-identical regardless. Program P: its
  // rules are subject-local, so subject sharding is
  // dependency-respecting with no help from the router's
  // duplicated-predicate broadcast (P's plan duplicates nothing —
  // this leg isolates the delta machinery from the broadcast path).
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const std::vector<Triple> stream = MakeStream(1000, /*seed=*/17);

  const std::string oracle = SyncOracleTranscript(
      *program, /*window_size=*/200, stream, nullptr, /*window_slide=*/40);

  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.pipeline.window_size = 200;
  options.pipeline.window_slide = 40;
  options.pipeline.async = true;
  options.pipeline.max_inflight_windows = 4;
  options.pipeline.reuse_solving = true;
  ShardedPipelineStats stats;
  EXPECT_EQ(ShardedTranscript(*program, options, stream, &stats), oracle);
  EXPECT_EQ(stats.merge_errors, 0u);
  EXPECT_GT(stats.delta_punctuations, 0u);
}

TEST_F(ShardedPipelineTest, StatsAggregateAcrossShards) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  ShardedPipelineOptions options;
  options.num_shards = 4;
  options.pipeline.window_size = 300;
  options.pipeline.async = true;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [](const TripleWindow&, const ParallelReasonerResult&) {});
  ASSERT_TRUE(engine.ok()) << engine.status();

  (*engine)->PushBatch(MakeStream(1500));
  (*engine)->Flush();

  const ShardedPipelineStats stats = (*engine)->stats();
  ASSERT_EQ(stats.per_shard.size(), 4u);
  uint64_t windows = 0;
  uint64_t items = 0;
  for (const PipelineStats& shard : stats.per_shard) {
    windows += shard.windows;
    items += shard.items;
  }
  EXPECT_EQ(stats.aggregate.windows, windows);
  EXPECT_EQ(stats.aggregate.items, items);
  EXPECT_EQ(items, 1500u);
  EXPECT_EQ(stats.merged_windows, 5u);  // 1500 / 300 global windows.
  EXPECT_EQ(std::accumulate(stats.routed_items.begin(),
                            stats.routed_items.end(), uint64_t{0}),
            1500u);
  EXPECT_EQ(stats.filtered_items, 0u);
  // Sub-window count >= global windows (each global window splits into
  // at least one non-empty sub-window) and <= shards * global windows.
  EXPECT_GE(windows, stats.merged_windows);
  EXPECT_LE(windows, 4 * stats.merged_windows);
}

TEST_F(ShardedPipelineTest, FlushDrainsAndEngineStaysUsable) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> callbacks{0};
  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.pipeline.window_size = 300;
  options.pipeline.async = true;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [&](const TripleWindow&, const ParallelReasonerResult&) {
            ++callbacks;
          });
  ASSERT_TRUE(engine.ok()) << engine.status();

  (*engine)->PushBatch(MakeStream(900));
  (*engine)->Flush();
  EXPECT_EQ(callbacks.load(), 3u);
  EXPECT_EQ((*engine)->stats().merged_windows, 3u);

  // The engine keeps running after a flush.
  (*engine)->PushBatch(MakeStream(600, /*seed=*/5));
  (*engine)->Flush();
  EXPECT_EQ(callbacks.load(), 5u);
}

TEST_F(ShardedPipelineTest, DestructorDrainsAdmittedGlobalWindows) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> callbacks{0};
  {
    ShardedPipelineOptions options;
    options.num_shards = 2;
    options.pipeline.window_size = 200;
    options.pipeline.async = true;
    options.pipeline.max_inflight_windows = 8;
    StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
        ShardedPipelineEngine::Create(
            &*program, options,
            [&](const TripleWindow&, const ParallelReasonerResult&) {
              ++callbacks;
            });
    ASSERT_TRUE(engine.ok()) << engine.status();
    // 4 closed global windows + 100 items of partial window that was
    // never assigned: the destructor must deliver exactly the closed 4.
    (*engine)->PushBatch(MakeStream(900));
  }
  EXPECT_EQ(callbacks.load(), 4u);
}

TEST_F(ShardedPipelineTest, CreateValidatesOptions) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());
  const ShardedPipelineEngine::ResultCallback callback =
      [](const TripleWindow&, const ParallelReasonerResult&) {};

  ShardedPipelineOptions zero_shards;
  zero_shards.num_shards = 0;
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(&*program, zero_shards, callback).ok());

  // Lossy backpressure needs async inner pipelines (sync mode has no work
  // queue to shed from); with async set the shedding-aware merge handles
  // it, sliding windows included.
  ShardedPipelineOptions shedding;
  shedding.pipeline.backpressure = BackpressurePolicy::kDropOldest;
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(&*program, shedding, callback).ok());
  shedding.pipeline.async = true;
  EXPECT_TRUE(
      ShardedPipelineEngine::Create(&*program, shedding, callback).ok());

  ShardedPipelineOptions ok_options;
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(nullptr, ok_options, callback).ok());
  EXPECT_FALSE(ShardedPipelineEngine::Create(
                   &*program, ok_options,
                   ShardedPipelineEngine::ResultCallback())
                   .ok());
  EXPECT_FALSE(
      ShardedPipelineEngine::Create(&*program, ok_options, EmissionHandler())
          .ok());
}

TEST_F(ShardedPipelineTest, FailedSubWindowsSkipTheirSlotInsteadOfStalling) {
  // Force every sub-window's reasoning to fail (grounding resource limit)
  // with SYNCHRONOUS inner pipelines: the error deliveries must consume
  // their merge slots so Flush drains instead of hanging, and the merged
  // windows are skipped and counted — the engine's error discipline.
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> callbacks{0};
  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.pipeline.window_size = 200;
  options.pipeline.async = false;
  options.pipeline.reasoner.reasoner.grounding.max_ground_rules = 1;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [&](const TripleWindow&, const ParallelReasonerResult&) {
            ++callbacks;
          });
  ASSERT_TRUE(engine.ok()) << engine.status();

  (*engine)->PushBatch(MakeStream(600));  // Three global windows.
  (*engine)->Flush();                     // Must not hang.

  EXPECT_EQ(callbacks.load(), 0u);
  const ShardedPipelineStats stats = (*engine)->stats();
  EXPECT_EQ(stats.merged_windows, 0u);
  EXPECT_EQ(stats.merge_errors, 3u);
  EXPECT_GE(stats.aggregate.errors, 3u);  // Per-sub-window failures.
}

TEST_F(ShardedPipelineTest, ThrowingCallbackIsCountedNotFatal) {
  StatusOr<Program> program = MakeTrafficProgram(
      symbols_, TrafficProgramVariant::kP, /*with_show=*/true);
  ASSERT_TRUE(program.ok());

  std::atomic<uint64_t> delivered{0};
  ShardedPipelineOptions options;
  options.num_shards = 2;
  options.pipeline.window_size = 250;
  options.pipeline.async = true;
  StatusOr<std::unique_ptr<ShardedPipelineEngine>> engine =
      ShardedPipelineEngine::Create(
          &*program, options,
          [&](const TripleWindow& window, const ParallelReasonerResult&) {
            if (window.sequence == 0) throw std::runtime_error("boom");
            ++delivered;
          });
  ASSERT_TRUE(engine.ok()) << engine.status();

  (*engine)->PushBatch(MakeStream(750));  // Three global windows.
  (*engine)->Flush();

  EXPECT_EQ(delivered.load(), 2u);  // Windows 1 and 2 still arrive.
  const ShardedPipelineStats stats = (*engine)->stats();
  EXPECT_EQ(stats.merge_errors, 1u);
  EXPECT_EQ(stats.merged_windows, 2u);
}

}  // namespace
}  // namespace streamasp
